// Go halves of the AVX2 assembly kernels (avx2_amd64.s): scalar
// fallback for bailed groups and ragged tails, plus the avx2Funcs
// implementation set. Kernels outside the assembly hot set (the simple
// fused column ops) reuse the unrolled implementations, which the
// compiler already emits as VEX code under GOAMD64=v3.

package vmath

import "math"

// lanes is the SIMD group width of the AVX2 kernels: four float64 per
// 256-bit YMM register.
const lanes = 4

// The assembly kernels process dst in 4-lane groups and return the
// number of elements completed (a multiple of 4). The gated kernels
// (exp, log, normFactor) stop early at the first group containing a
// special-case input, which the wrappers reprocess with the scalar
// helpers before re-entering; the unconditional kernels always return
// floor(n/4)·4.
func expAVX2(dst, x []float64) int
func logAVX2(dst, x []float64) int
func normFactorAVX2(dst, q []float64) int
func normFactorFastAVX2(dst, q []float64) int
func hypotAVX2(dst, x, y []float64) int
func starUniformAVX2(dst []float64, s1 []uint64) int
func pairNormSqAVX2(q, d []float64) int
func boxMullerScaleAVX2(out, us, vs, fs []float64) int
func compactAcceptAVX2(us, vs, qs, ds, ps []float64) int
func arNoiseAVX2(out, ar, base, z []float64, att, arCoef, innov float64) int
func arMotionNoiseAVX2(out, ar, base, z []float64, att, arCoef, innov, sd float64) int
func roundClampAVX2(dst []float64, lo, hi float64) int
func roundScaleClampAVX2(dst []float64, step, invStep, lo, hi float64) int
func clampRangeAVX2(dst []float64, lo, hi float64) int

// gatedLoop drives a bailing assembly kernel over dst/x: assembly for
// runs of fast-path groups, the scalar helper for the group the
// assembly bailed on (mirroring the unrolled set's special-group
// handling lane by lane) and for the tail.
func gatedLoop(dst, x []float64, asm func(dst, x []float64) int, scalar func(float64) float64) {
	n := len(dst)
	x = x[:n]
	i := 0
	for i+lanes <= n {
		i += asm(dst[i:], x[i:n])
		if i+lanes <= n {
			// The assembly bailed: this group has a special-case lane.
			dst[i] = scalar(x[i])
			dst[i+1] = scalar(x[i+1])
			dst[i+2] = scalar(x[i+2])
			dst[i+3] = scalar(x[i+3])
			i += lanes
		}
	}
	for ; i < n; i++ {
		dst[i] = scalar(x[i])
	}
}

// roundQuantAVX2 dispatches on step once (like roundQuantLoop), runs
// the matching unconditional assembly body over the complete groups and
// finishes the tail with the shared scalar loop.
func roundQuantAVX2(dst []float64, step, invStep, lo, hi float64) {
	var i int
	switch {
	case step == 1:
		i = roundClampAVX2(dst, lo, hi)
	case step > 0:
		i = roundScaleClampAVX2(dst, step, invStep, lo, hi)
	default:
		i = clampRangeAVX2(dst, lo, hi)
	}
	roundQuantLoop(dst[i:], step, invStep, lo, hi)
}

var avx2Funcs = funcs{
	name: "avx2-amd64",
	path: "avx2",
	expSlice: func(dst, x []float64) {
		gatedLoop(dst, x, expAVX2, exp1)
	},
	logSlice: func(dst, x []float64) {
		gatedLoop(dst, x, logAVX2, log1)
	},
	hypotSlice: func(dst, x, y []float64) {
		n := len(dst)
		x, y = x[:n], y[:n]
		i := hypotAVX2(dst, x, y)
		for ; i < n; i++ {
			a, b := x[i], y[i]
			dst[i] = math.Sqrt(a*a + b*b)
		}
	},
	normFactor: func(dst, q []float64) {
		gatedLoop(dst, q, normFactorAVX2, normFactor1)
	},
	normFactorFast: func(dst, q []float64) {
		gatedLoop(dst, q, normFactorFastAVX2, normFactorFast1)
	},
	starUniform: func(dst []float64, s1 []uint64) {
		n := len(dst)
		s1 = s1[:n]
		i := starUniformAVX2(dst, s1)
		for ; i < n; i++ {
			dst[i] = starUniform1(s1[i])
		}
	},
	pairNormSq: func(q, d []float64) {
		n := len(q)
		d = d[:2*n]
		j := pairNormSqAVX2(q, d)
		for ; j < n; j++ {
			u, v := d[2*j], d[2*j+1]
			q[j] = u*u + v*v
		}
	},
	boxMullerScale: func(out, us, vs, fs []float64) {
		n := len(fs)
		out, us, vs = out[:2*n], us[:n], vs[:n]
		j := boxMullerScaleAVX2(out, us, vs, fs)
		for ; j < n; j++ {
			f := fs[j]
			out[2*j] = us[j] * f
			out[2*j+1] = vs[j] * f
		}
	},
	compactAccept: func(us, vs, qs, ds, ps []float64) int {
		n := len(ps)
		acc := compactAcceptAVX2(us, vs, qs, ds, ps)
		for j := n &^ 3; j < n; j++ {
			q := ps[j]
			us[acc], vs[acc], qs[acc] = ds[2*j], ds[2*j+1], q
			if !(q == 0 || q >= 1) { // NaN accepted, matching the reject test
				acc++
			}
		}
		return acc
	},
	arNoise: func(out, ar, base, z []float64, att, arCoef, innov float64) {
		n := len(out)
		ar, base, z = ar[:n], base[:n], z[:n]
		k := arNoiseAVX2(out, ar, base, z, att, arCoef, innov)
		for ; k < n; k++ {
			a := arCoef*ar[k] + innov*z[k]
			ar[k] = a
			out[k] = base[k] - att + a
		}
	},
	arMotionNoise: func(out, ar, base, z []float64, att, arCoef, innov, sd float64) {
		n := len(out)
		ar, base, z = ar[:n], base[:n], z[:2*n]
		k := arMotionNoiseAVX2(out, ar, base, z, att, arCoef, innov, sd)
		for ; k < n; k++ {
			a := arCoef*ar[k] + innov*z[2*k]
			ar[k] = a
			out[k] = base[k] - att + a + sd*z[2*k+1]
		}
	},
	scaleSlice:    unrolledFuncs.scaleSlice,
	axpySlice:     unrolledFuncs.axpySlice,
	axpyClamp:     unrolledFuncs.axpyClamp,
	sqrtSlice:     unrolledFuncs.sqrtSlice,
	clampMax:      unrolledFuncs.clampMax,
	roundQuant:    roundQuantAVX2,
	excessPath:    unrolledFuncs.excessPath,
	distToSeg:     unrolledFuncs.distToSeg,
	accumSqScaled: unrolledFuncs.accumSqScaled,
}
