package vmath

import (
	"os"
	"testing"
)

// altImplSets returns the implementation sets cross-checked against the
// portable reference on this machine: always the unrolled set, plus the
// AVX2 assembly set when the hardware can run it.
func altImplSets() []*funcs {
	sets := []*funcs{&unrolledFuncs}
	if haveAVX2() {
		sets = append(sets, &avx2Funcs)
	}
	return sets
}

// expExactStdlib reports whether ExpSlice is expected to match math.Exp
// bit for bit on this machine: true exactly when the stdlib assembly
// takes its FMA variant, which is the algorithm expCore replicates.
var expExactStdlib = haveFMA()

func TestImplSelectionMatchesHardware(t *testing.T) {
	force := os.Getenv("FADEWICH_VMATH")
	want := "portable"
	switch {
	case force != "":
		want = map[string]string{
			"portable": "portable",
			"unroll":   "unrolled-amd64",
			"avx2":     "avx2-amd64",
		}[force]
		if want == "" {
			t.Fatalf("test running under unknown FADEWICH_VMATH=%q — init should have panicked", force)
		}
	case haveAVX2() && !novecEnv(os.Getenv("FADEWICH_NOVEC")):
		want = "avx2-amd64"
	}
	if got := Impl(); got != want {
		t.Fatalf("Impl() = %q, want %q for this CPU/environment", got, want)
	}
}

func TestPickImplForcingMatrix(t *testing.T) {
	cases := []struct {
		force, novec string
		avx2         bool
		want         *funcs
		wantErr      bool
	}{
		{"", "", true, &avx2Funcs, false},
		{"", "", false, &portableFuncs, false},
		{"", "1", true, &portableFuncs, false},
		{"", "0", true, &avx2Funcs, false},
		{"portable", "", true, &portableFuncs, false},
		{"unroll", "", true, &unrolledFuncs, false},
		{"unroll", "", false, &unrolledFuncs, false},
		{"avx2", "", true, &avx2Funcs, false},
		{"avx2", "1", true, &avx2Funcs, false}, // explicit force beats legacy NOVEC
		{"avx2", "", false, nil, true},         // forced without hardware: loud failure
		{"sse9", "", true, nil, true},          // unknown value: loud failure
	}
	for _, c := range cases {
		got, err := pickImpl(c.force, c.novec, c.avx2)
		if c.wantErr {
			if err == nil {
				t.Fatalf("pickImpl(%q, %q, %v): want error, got %q", c.force, c.novec, c.avx2, got.name)
			}
			continue
		}
		if err != nil {
			t.Fatalf("pickImpl(%q, %q, %v): unexpected error %v", c.force, c.novec, c.avx2, err)
		}
		if got != c.want {
			t.Fatalf("pickImpl(%q, %q, %v) = %q, want %q", c.force, c.novec, c.avx2, got.name, c.want.name)
		}
	}
}

func TestActivePathMatchesImpl(t *testing.T) {
	want := map[string]string{
		"portable":       "portable",
		"unrolled-amd64": "unroll",
		"avx2-amd64":     "avx2",
	}[Impl()]
	if got := ActivePath(); got != want {
		t.Fatalf("ActivePath() = %q, want %q for Impl() = %q", got, want, Impl())
	}
}
