package vmath

import (
	"os"
	"testing"
)

// altImpl is the second implementation set cross-checked against the
// portable reference on this platform.
var altImpl = &unrolledFuncs

// expExactStdlib reports whether ExpSlice is expected to match math.Exp
// bit for bit on this machine: true exactly when the stdlib assembly
// takes its FMA variant, which is the algorithm expCore replicates.
var expExactStdlib = haveFMA()

func TestImplSelectionMatchesHardware(t *testing.T) {
	want := "portable"
	if haveAVX2() && !novecEnv(os.Getenv("FADEWICH_NOVEC")) {
		want = "unrolled-amd64"
	}
	if got := Impl(); got != want {
		t.Fatalf("Impl() = %q, want %q for this CPU/environment", got, want)
	}
}
