package vmath

import (
	"math"
	"testing"
)

// FuzzVmathKernels fuzzes two float64 seeds into a shared input set and
// checks (a) the exp/log kernels against the stdlib bit for bit and
// (b) the portable set against every alternative implementation set on
// this machine (unrolled, and the AVX2 assembly where supported) across
// all kernels, including the awkward lengths that pin SIMD group bail
// and tail handling.
func FuzzVmathKernels(f *testing.F) {
	f.Add(0.0, 0.0)
	f.Add(1.5, -3.25)
	f.Add(709.4, -745.0)
	f.Add(math.Inf(1), math.SmallestNonzeroFloat64)
	f.Add(2.2250738585072009e-308, 1.0/(1<<28))
	f.Add(math.NaN(), 1e300)
	f.Fuzz(func(t *testing.T, a, b float64) {
		vals := []float64{
			a, b, -a, -b, a + b, a - b, a * b, a / 2, b * 0.3,
			math.Abs(a), math.Abs(b) + 1e-9,
		}
		// Stdlib equivalence of the exp/log kernels on the fuzzed values.
		dst := make([]float64, len(vals))
		ExpSlice(dst, vals)
		for i, x := range vals {
			want := math.Exp(x)
			if !expMatchesStdlib(dst[i], want) {
				t.Fatalf("ExpSlice(%v) = %v, math.Exp = %v", x, dst[i], want)
			}
		}
		LogSlice(dst, vals)
		for i, x := range vals {
			want := math.Log(x)
			if !bitsEqual(dst[i], want) && !(math.IsNaN(dst[i]) && math.IsNaN(want)) {
				t.Fatalf("LogSlice(%v) = %v, math.Log = %v", x, dst[i], want)
			}
		}
		sets := altImplSets()
		if len(sets) == 0 {
			return
		}
		for _, n := range []int{0, 1, 3, 4, 5, 7, 8, 11, 19, 32, 33} {
			in := deriveInputs(vals, n)
			pa := runKernels(&portableFuncs, in)
			for _, alt := range sets {
				pb := runKernels(alt, in)
				for name, av := range pa {
					bv := pb[name]
					for i := range av {
						if !bitsEqual(av[i], bv[i]) && !(math.IsNaN(av[i]) && math.IsNaN(bv[i])) {
							t.Fatalf("kernel %s (n=%d, %s) diverges at [%d]: %v vs %v", name, n, alt.name, i, av[i], bv[i])
						}
					}
				}
			}
		}
	})
}
