package baseline

import "testing"

func TestDefaultPolicy(t *testing.T) {
	p := Default()
	if p.TimeoutSec != 300 {
		t.Fatalf("default timeout %v", p.TimeoutSec)
	}
	if p.DeauthDelay() != 300 {
		t.Fatalf("deauth delay %v", p.DeauthDelay())
	}
}

func TestVulnerableTimeScalesWithDepartures(t *testing.T) {
	p := Policy{TimeoutSec: 300}
	if v := p.VulnerableTime(63); v != 63*300 {
		t.Fatalf("vulnerable time %v", v)
	}
	if v := p.VulnerableTime(0); v != 0 {
		t.Fatalf("zero departures vulnerable time %v", v)
	}
}

func TestAttackOpportunitiesAlwaysAvailable(t *testing.T) {
	p := Policy{TimeoutSec: 300}
	if got := p.AttackOpportunities(63, 6, 4); got != 63 {
		t.Fatalf("opportunities %d, want all 63", got)
	}
}

func TestAttackOpportunitiesWithAbsurdlyShortTimeout(t *testing.T) {
	// A 1-second time-out would beat even the co-worker; the adversary
	// gets nothing.
	p := Policy{TimeoutSec: 1}
	if got := p.AttackOpportunities(63, 6, 0); got != 0 {
		t.Fatalf("opportunities %d, want 0", got)
	}
}
