// Package baseline implements the comparison policy of the paper's
// evaluation: plain idle-time-out deauthentication (T = 300 s). Under this
// policy every departure leaves the workstation vulnerable for the full
// time-out, every adversary gets an attack opportunity, and users pay no
// usability cost — the reference point of Figs 10 and 13.
package baseline

// Policy is the time-out deauthentication policy.
type Policy struct {
	// TimeoutSec is T, the idle time after which a session locks.
	TimeoutSec float64
}

// Default returns the paper's T = 300 s baseline.
func Default() Policy { return Policy{TimeoutSec: 300} }

// DeauthDelay returns the time between a user's departure (last input) and
// deauthentication: exactly the time-out.
func (p Policy) DeauthDelay() float64 { return p.TimeoutSec }

// VulnerableTime returns the total unattended-and-authenticated time for
// the given number of departures: each contributes the full time-out.
func (p Policy) VulnerableTime(departures int) float64 {
	return float64(departures) * p.TimeoutSec
}

// AttackOpportunities returns how many of the departures an adversary
// arriving delaySec after the victim's office exit can exploit. exitDelay
// is the typical walk time from workstation to door. Under a pure time-out
// every departure is exploitable as long as the time-out exceeds the
// adversary's arrival time, which holds for any realistic T.
func (p Policy) AttackOpportunities(departures int, exitDelay, delaySec float64) int {
	if p.TimeoutSec > exitDelay+delaySec {
		return departures
	}
	return 0
}
