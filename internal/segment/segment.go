// Package segment is the durable half of the action path: a
// crash-safe, append-only log of wire frames split across rotating
// segment files, with a reader that replays them after a restart.
//
// Layout of a segment directory:
//
//	segment-000000-000000000900.fwl   sealed
//	segment-000001-000000512500.fwl   sealed
//	segment-000002-000000988100.fwl   active (still growing)
//	MANIFEST.json                     sealed-segment index, replaced
//	                                  atomically (write-temp + rename)
//
// Each segment file is a plain concatenation of wire frames (package
// wire), named segment-<seq>-<firsttick>.fwl where <seq> is the
// writer's monotone segment counter and <firsttick> is the office-clock
// time of the segment's first action in integer milliseconds. The
// Writer seals a segment — flushes, optionally fsyncs, closes, and
// records it in the manifest — when the next frame would push it past
// Config.MaxSegmentBytes or the segment has been open longer than
// Config.MaxSegmentAge, and starts the next sequence number. A crash
// therefore loses at most the unflushed tail of the single active
// segment; everything sealed is durable (to the degree the fsync policy
// bought) and everything up to the last complete frame of the active
// segment is recovered by the Reader, which detects a torn final frame
// via the wire CRC and stops before it (or truncates it in place with
// Options.Repair).
package segment

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"time"

	"fadewich/internal/engine"
	"fadewich/internal/wire"
)

// ManifestName is the sealed-segment index file inside a segment
// directory. It is only ever replaced atomically.
const ManifestName = "MANIFEST.json"

// DefaultMaxSegmentBytes is the size-rotation threshold selected when
// Config.MaxSegmentBytes is zero.
const DefaultMaxSegmentBytes = 4 << 20

// segmentNameRe matches segment file names; capture 1 is the sequence
// number, capture 2 the first-action tick in milliseconds.
var segmentNameRe = regexp.MustCompile(`^segment-(\d+)-(\d+)\.fwl$`)

// FsyncPolicy selects how hard the Writer pushes frames to stable
// storage. Stronger policies survive worse crashes and cost more.
type FsyncPolicy int

const (
	// FsyncNever never calls fsync: buffers flush to the OS at rotation
	// and Close, and the OS decides when they reach disk. An OS crash
	// can lose sealed segments; a process crash cannot.
	FsyncNever FsyncPolicy = iota
	// FsyncRotate fsyncs each segment (and the manifest and directory)
	// when it is sealed. Sealed segments survive an OS crash; the active
	// segment's tail is still at risk.
	FsyncRotate
	// FsyncAlways additionally flushes and fsyncs after every frame.
	// At most the frame being written when the machine died is torn.
	FsyncAlways
)

// String returns the CLI spelling of the policy (never, rotate, always).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncNever:
		return "never"
	case FsyncRotate:
		return "rotate"
	case FsyncAlways:
		return "always"
	default:
		return fmt.Sprintf("fsync(%d)", int(p))
	}
}

// ParseFsyncPolicy maps the CLI spellings back to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "never":
		return FsyncNever, nil
	case "rotate":
		return FsyncRotate, nil
	case "always":
		return FsyncAlways, nil
	default:
		return 0, fmt.Errorf("segment: unknown fsync policy %q (want never, rotate or always)", s)
	}
}

// Config parameterises a Writer.
type Config struct {
	// Dir is the segment directory, created if missing.
	Dir string
	// MaxSegmentBytes rotates the active segment before a frame would
	// push it past this size (0 selects DefaultMaxSegmentBytes). A
	// single frame larger than the limit still gets its own segment.
	MaxSegmentBytes int64
	// MaxSegmentAge rotates the active segment when it has been open at
	// least this long, so slow-but-steady streams still seal (and,
	// under FsyncRotate, persist) regularly. Age is evaluated when the
	// next frame arrives: a stream that stops entirely seals only at
	// Close (call Sync for idle durability). 0 disables age rotation.
	MaxSegmentAge time.Duration
	// Fsync is the durability policy. The zero value is FsyncNever.
	Fsync FsyncPolicy
	// Version is the wire codec frames are written under (0 selects
	// wire.V1JSONL). Frames are self-describing, so a directory may mix
	// codecs across writer generations.
	Version wire.Version
	// Compress writes frames FlagCompressed when the payload clears the
	// wire layer's threshold and actually shrinks (see
	// wire.AppendFrameCompressed). Frames are self-describing either
	// way, so a directory may mix compressed and plain frames across
	// writer generations — and within one, since small batches fall
	// back to plain frames.
	Compress bool
}

// Info describes one sealed segment — the manifest entry.
type Info struct {
	// Name is the file name within the directory.
	Name string `json:"name"`
	// Seq is the writer's segment counter.
	Seq uint64 `json:"seq"`
	// MinTime and MaxTime bound the office-clock times of the actions
	// inside, so readers can skip whole segments on time-range queries.
	MinTime float64 `json:"min_time"`
	MaxTime float64 `json:"max_time"`
	// Frames and Bytes are the sealed totals; Bytes is the on-disk file
	// size.
	Frames int   `json:"frames"`
	Bytes  int64 `json:"bytes"`
	// LogicalBytes is the size the segment's frames occupy with every
	// payload uncompressed — equal to Bytes when nothing is compressed.
	// The Bytes/LogicalBytes pair is what dashboards (and the cluster
	// e2e test) read the on-disk compression ratio from. Manifests from
	// before the compression layer lack the field; readers treat 0 as
	// "same as Bytes".
	LogicalBytes int64 `json:"logical_bytes,omitempty"`
	// SealedUnix is when the segment was sealed, in Unix seconds — the
	// clock the maintenance layer's age cutoffs (compaction, TTL
	// retention) run on. 0 in manifests from before the maintenance
	// layer; maintenance falls back to the file's mtime then.
	SealedUnix int64 `json:"sealed_unix,omitempty"`
	// Compacted marks a segment the compactor already rewrote into
	// compressed frames; compaction skips it from then on.
	Compacted bool `json:"compacted,omitempty"`
}

// manifest is the JSON shape of MANIFEST.json.
type manifest struct {
	Schema int    `json:"schema"`
	Sealed []Info `json:"sealed"`
}

// WriterStats snapshots a Writer's counters.
type WriterStats struct {
	// Sealed counts segments sealed (rotations plus the final seal).
	Sealed int
	// Open is the active segment's file name ("" when none).
	Open string
	// Frames and Bytes count everything appended, sealed or not. Bytes
	// is the logical count — what the frames occupy with payloads
	// uncompressed; WireBytes is what actually went to disk. The two are
	// equal without compression, and their ratio is the writer's
	// on-disk compression ratio.
	Frames    uint64
	Bytes     uint64
	WireBytes uint64
	// Syncs counts fsync calls on segment files.
	Syncs uint64
}

// Writer appends batches to a rotating segment log. It is not safe for
// concurrent use — stream.SegmentSink adds the locking the sink
// contract needs.
type Writer struct {
	cfg     Config
	nextSeq uint64

	f        *os.File
	openedAt time.Time
	cur      Info
	buf      []byte

	man    manifest
	stats  WriterStats
	closed bool

	// now is the clock used for age rotation; tests pin it.
	now func() time.Time
}

// NewWriter opens (creating if needed) a segment directory for append.
// A directory with existing segments is continued: the writer starts a
// fresh segment at the next unused sequence number and extends the
// manifest, never reopening old files — after a crash the previous
// active segment simply stays unsealed, and the Reader recovers its
// intact prefix.
func NewWriter(cfg Config) (*Writer, error) {
	if cfg.Dir == "" {
		return nil, errors.New("segment: empty directory")
	}
	if cfg.MaxSegmentBytes == 0 {
		cfg.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if cfg.MaxSegmentBytes < 0 {
		return nil, fmt.Errorf("segment: negative segment size %d", cfg.MaxSegmentBytes)
	}
	if cfg.MaxSegmentAge < 0 {
		return nil, fmt.Errorf("segment: negative segment age %v", cfg.MaxSegmentAge)
	}
	if cfg.Version == 0 {
		cfg.Version = wire.V1JSONL
	}
	if cfg.Version != wire.V1JSONL && cfg.Version != wire.V2Binary {
		return nil, fmt.Errorf("%w %d", wire.ErrVersion, uint8(cfg.Version))
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	w := &Writer{cfg: cfg, now: time.Now}
	ents, err := scanDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if len(ents) > 0 {
		w.nextSeq = ents[len(ents)-1].seq + 1
	}
	if man, err := loadManifest(cfg.Dir); err != nil {
		return nil, err
	} else if man != nil {
		w.man = *man
		w.stats.Sealed = len(man.Sealed)
	}
	return w, nil
}

// Append writes one batch as one wire frame, rotating first if the
// active segment is full or too old. Empty batches are ignored (a
// segment is named after its first action, and there is nothing to
// replay in an empty frame).
func (w *Writer) Append(batch []engine.OfficeAction) error {
	if w.closed {
		return errors.New("segment: writer closed")
	}
	if len(batch) == 0 {
		return nil
	}
	var err error
	logical := 0
	if w.cfg.Compress {
		w.buf, logical, err = wire.AppendFrameCompressed(w.buf[:0], w.cfg.Version, batch, 0)
	} else {
		w.buf, err = wire.AppendFrame(w.buf[:0], w.cfg.Version, batch)
		logical = len(w.buf)
	}
	if err != nil {
		return err
	}
	return w.writeFrame(w.buf, logical, batch)
}

// AppendEncoded writes one already-encoded wire frame carrying the
// given batch — the encode-once fan-out path: the dispatch loop
// encodes a frame once and the segment sink appends those exact bytes
// instead of re-encoding the batch. The frame must be one complete
// frame; the batch (used for the manifest's time bounds and must be
// non-empty, matching Append's empty-batch skip) must be what the
// frame decodes to. logical is the frame's uncompressed size (pass
// len(frame) for a plain frame).
func (w *Writer) AppendEncoded(frame []byte, logical int, batch []engine.OfficeAction) error {
	if w.closed {
		return errors.New("segment: writer closed")
	}
	if len(batch) == 0 {
		return nil
	}
	if len(frame) < wire.Overhead || frame[0] != wire.Magic[0] || frame[1] != wire.Magic[1] {
		return errors.New("segment: AppendEncoded: not a wire frame")
	}
	if logical <= 0 {
		logical = len(frame)
	}
	return w.writeFrame(frame, logical, batch)
}

// writeFrame appends one encoded frame: rotate if due, open if needed,
// write, account.
func (w *Writer) writeFrame(frame []byte, logical int, batch []engine.OfficeAction) error {
	if w.f != nil && w.rotateDue(int64(len(frame))) {
		if err := w.seal(); err != nil {
			return err
		}
	}
	if w.f == nil {
		if err := w.open(batch[0].Action.Time); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("segment: %s: %w", w.cur.Name, err)
	}
	w.cur.Frames++
	w.cur.Bytes += int64(len(frame))
	w.cur.LogicalBytes += int64(logical)
	for _, a := range batch {
		if a.Action.Time < w.cur.MinTime {
			w.cur.MinTime = a.Action.Time
		}
		if a.Action.Time > w.cur.MaxTime {
			w.cur.MaxTime = a.Action.Time
		}
	}
	w.stats.Frames++
	w.stats.Bytes += uint64(logical)
	w.stats.WireBytes += uint64(len(frame))
	if w.cfg.Fsync == FsyncAlways {
		if err := w.sync(); err != nil {
			return err
		}
	}
	return nil
}

// rotateDue reports whether the next frame of frameBytes must start a
// fresh segment.
func (w *Writer) rotateDue(frameBytes int64) bool {
	if w.cur.Frames == 0 {
		return false // a frame larger than the limit still gets a segment
	}
	if w.cur.Bytes+frameBytes > w.cfg.MaxSegmentBytes {
		return true
	}
	return w.cfg.MaxSegmentAge > 0 && w.now().Sub(w.openedAt) >= w.cfg.MaxSegmentAge
}

// open starts the next segment, named after the first action's time.
func (w *Writer) open(firstTime float64) error {
	millis := int64(math.Round(firstTime * 1000))
	if millis < 0 {
		millis = 0
	}
	name := fmt.Sprintf("segment-%06d-%012d.fwl", w.nextSeq, millis)
	f, err := os.OpenFile(filepath.Join(w.cfg.Dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	w.f = f
	w.openedAt = w.now()
	w.cur = Info{Name: name, Seq: w.nextSeq, MinTime: math.Inf(1), MaxTime: math.Inf(-1)}
	w.nextSeq++
	return nil
}

// sync fsyncs the active segment file.
func (w *Writer) sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("segment: %s: sync: %w", w.cur.Name, err)
	}
	w.stats.Syncs++
	return nil
}

// seal finishes the active segment: flush, fsync per policy, close,
// record it in the manifest, and replace the manifest atomically.
func (w *Writer) seal() error {
	if w.cfg.Fsync >= FsyncRotate {
		if err := w.sync(); err != nil {
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("segment: %s: close: %w", w.cur.Name, err)
	}
	w.f = nil
	w.cur.SealedUnix = w.now().Unix()
	w.man.Sealed = append(w.man.Sealed, w.cur)
	w.stats.Sealed++
	if err := w.writeManifest(); err != nil {
		return err
	}
	if w.cfg.Fsync >= FsyncRotate {
		if err := syncDir(w.cfg.Dir); err != nil {
			return err
		}
	}
	w.cur = Info{}
	return nil
}

// writeManifest replaces MANIFEST.json atomically: the new index is
// written to a temporary file and renamed into place, so a reader (or a
// crash) only ever observes the old manifest or the new one, never a
// partial write.
func (w *Writer) writeManifest() error {
	w.man.Schema = 1
	data, err := marshalManifest(&w.man)
	if err != nil {
		return err
	}
	tmp := filepath.Join(w.cfg.Dir, ManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segment: manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("segment: manifest: %w", err)
	}
	if w.cfg.Fsync >= FsyncRotate {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("segment: manifest: sync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("segment: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.cfg.Dir, ManifestName)); err != nil {
		return fmt.Errorf("segment: manifest: %w", err)
	}
	return nil
}

// Sync flushes and fsyncs the active segment, regardless of policy.
func (w *Writer) Sync() error {
	if w.closed {
		return errors.New("segment: writer closed")
	}
	if w.f == nil {
		return nil
	}
	return w.sync()
}

// Close seals the active segment and writes the final manifest.
// Idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	return w.seal()
}

// Stats snapshots the writer's counters.
func (w *Writer) Stats() WriterStats {
	st := w.stats
	st.Open = w.cur.Name
	return st
}

// Sealed returns a copy of the manifest's sealed-segment index,
// including segments sealed by earlier writer generations in the same
// directory — the per-segment detail behind the Stats.Sealed count,
// giving a metrics endpoint the directory-wide frame/byte totals.
func (w *Writer) Sealed() []Info {
	out := make([]Info, len(w.man.Sealed))
	copy(out, w.man.Sealed)
	return out
}

// syncDir fsyncs a directory so renames and new files inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("segment: sync %s: %w", dir, err)
	}
	return nil
}

// dirEntry is one segment file found on disk.
type dirEntry struct {
	name string
	seq  uint64
}

// scanDir lists the segment files of dir in ascending sequence order.
func scanDir(dir string) ([]dirEntry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	var out []dirEntry
	for _, e := range ents {
		m := segmentNameRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		seq, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("segment: %s: %w", e.Name(), err)
		}
		out = append(out, dirEntry{name: e.Name(), seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	for i := 1; i < len(out); i++ {
		if out[i].seq == out[i-1].seq {
			return nil, fmt.Errorf("segment: duplicate sequence number %d (%s, %s)", out[i].seq, out[i-1].name, out[i].name)
		}
	}
	return out, nil
}

// marshalManifest renders a manifest as the MANIFEST.json bytes.
func marshalManifest(man *manifest) ([]byte, error) {
	man.Schema = 1
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		panic(err) // plain scalar fields; cannot fail
	}
	return append(data, '\n'), nil
}

// loadManifest reads MANIFEST.json, returning nil when there is none
// (a directory whose writer never rotated or closed).
func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("segment: manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("segment: manifest: %w", err)
	}
	return &man, nil
}
