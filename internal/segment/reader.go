package segment

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fadewich/internal/engine"
	"fadewich/internal/wire"
)

// ErrTornMidLog is returned (wrapped) when a segment that is not the
// last one ends in a torn or corrupt frame — the crashed tail of an
// earlier writer generation. Open the directory with Options.Repair to
// truncate it and read on, or keep the error and investigate.
var ErrTornMidLog = errors.New("segment: torn frame before the last segment")

// Options filter and configure a Reader. The zero value replays
// everything and leaves torn tails in place.
type Options struct {
	// FromTime / ToTime bound the office-clock Time of returned actions
	// (inclusive). Zero means unbounded; action times are strictly
	// positive (the clock starts one tick after zero). Sealed segments
	// whose manifest MaxTime falls before FromTime are skipped whole.
	FromTime float64
	ToTime   float64
	// Offices, when non-empty, keeps only actions of these office IDs.
	Offices []int
	// Repair truncates a torn final frame in place (os.Truncate to the
	// last clean frame boundary) instead of just stopping before it.
	// Never combine with a writer still appending to the directory: a
	// torn tail may be a frame in flight.
	Repair bool
}

// TornInfo describes a torn or corrupt tail the Reader stopped before.
type TornInfo struct {
	// Path is the affected segment file.
	Path string
	// Offset is the last clean frame boundary — the truncation point.
	Offset int64
	// TornBytes is how many bytes past the boundary the file held.
	TornBytes int64
	// Err is the wire decode error that classified the tail.
	Err error
	// Repaired reports whether the file was truncated at Offset.
	Repaired bool
}

// Reader replays a segment directory frame by frame, across segment
// boundaries, in write order. It tolerates a growing directory: at the
// end of the known data it rescans for new segments and new bytes in
// the last one, so a caller may poll Next after io.EOF to follow a live
// writer. Not safe for concurrent use.
type Reader struct {
	dir string
	opt Options

	offices map[int]bool
	sealed  map[string]Info
	segs    []dirEntry

	idx int   // current segment index
	off int64 // resume offset within segs[idx]
	f   *os.File
	d   *wire.Decoder

	ver  wire.Version
	torn *TornInfo
}

// OpenDir opens a segment directory for replay. Segments named by the
// manifest but missing on disk are an error; segment files not (yet) in
// the manifest — the active tail, or the unsealed leftovers of a crash
// — are replayed after the sealed ones, in sequence order.
func OpenDir(dir string, opt Options) (*Reader, error) {
	if fi, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	} else if !fi.IsDir() {
		return nil, fmt.Errorf("segment: %s is not a directory", dir)
	}
	r := &Reader{dir: dir, opt: opt}
	if len(opt.Offices) > 0 {
		r.offices = make(map[int]bool, len(opt.Offices))
		for _, o := range opt.Offices {
			r.offices[o] = true
		}
	}
	if err := r.rescan(); err != nil {
		return nil, err
	}
	return r, nil
}

// rescan refreshes the segment list and manifest. New files append to
// the known list; known files never move (the writer's sequence numbers
// are monotone).
func (r *Reader) rescan() error {
	ents, err := scanDir(r.dir)
	if err != nil {
		return err
	}
	man, err := loadManifest(r.dir)
	if err != nil {
		return err
	}
	r.sealed = make(map[string]Info)
	if man != nil {
		for _, info := range man.Sealed {
			r.sealed[info.Name] = info
		}
	}
	byName := make(map[string]bool, len(ents))
	for _, e := range ents {
		byName[e.name] = true
	}
	for name := range r.sealed {
		if !byName[name] {
			return fmt.Errorf("segment: manifest names %s but the file is missing", name)
		}
	}
	known := len(r.segs)
	for _, e := range ents {
		if known > 0 && e.seq <= r.segs[known-1].seq {
			continue
		}
		r.segs = append(r.segs, e)
	}
	return nil
}

// keep applies the office and time-range filters.
func (r *Reader) keep(a engine.OfficeAction) bool {
	if r.offices != nil && !r.offices[a.Office] {
		return false
	}
	if r.opt.FromTime > 0 && a.Action.Time < r.opt.FromTime {
		return false
	}
	if r.opt.ToTime > 0 && a.Action.Time > r.opt.ToTime {
		return false
	}
	return true
}

// closeFile drops the open segment file and decoder.
func (r *Reader) closeFile() {
	if r.f != nil {
		r.f.Close()
		r.f, r.d = nil, nil
	}
}

// Next returns the surviving actions of the next frame (frames whose
// actions are all filtered out are skipped). At the end of the
// currently-written data it returns io.EOF; polling Next again later
// picks up frames appended in the meantime, so io.EOF means "caught
// up", not "finished" — a segment log has no natural end.
//
// A torn or corrupt tail on the last segment stops replay cleanly
// before it: Next returns io.EOF and Torn reports the cut (with
// Options.Repair the file is truncated at the boundary). The same
// damage before the last segment is a hard error (ErrTornMidLog)
// unless Repair is set, because silently resuming at the next segment
// would hide a hole in the middle of the stream.
func (r *Reader) Next() ([]engine.OfficeAction, error) {
	rescanned := false
	for {
		if r.idx >= len(r.segs) {
			if rescanned {
				return nil, io.EOF
			}
			rescanned = true
			if err := r.rescan(); err != nil {
				return nil, err
			}
			continue
		}
		if r.f == nil {
			e := r.segs[r.idx]
			if r.off == 0 && r.opt.FromTime > 0 {
				if info, ok := r.sealed[e.name]; ok && info.MaxTime < r.opt.FromTime {
					r.idx++
					continue
				}
			}
			f, err := os.Open(filepath.Join(r.dir, e.name))
			if err != nil {
				return nil, fmt.Errorf("segment: %w", err)
			}
			if r.off > 0 {
				if _, err := f.Seek(r.off, io.SeekStart); err != nil {
					f.Close()
					return nil, fmt.Errorf("segment: %s: %w", e.name, err)
				}
			}
			r.f, r.d = f, wire.NewDecoder(f)
		}
		acts, err := r.d.Decode()
		if err == nil {
			r.ver = r.d.Version()
			kept := acts[:0]
			for _, a := range acts {
				if r.keep(a) {
					kept = append(kept, a)
				}
			}
			if len(kept) == 0 {
				continue
			}
			return kept, nil
		}
		boundary := r.off + r.d.Offset()
		if err == io.EOF {
			// Clean end of this segment's known bytes.
			r.closeFile()
			if r.idx < len(r.segs)-1 {
				r.idx, r.off = r.idx+1, 0
				continue
			}
			// Last segment: remember the resume point, look once for new
			// data (growth reopens this file at the boundary; a fresh
			// rescan may reveal newer segments), then report caught-up.
			r.off = boundary
			if rescanned {
				return nil, io.EOF
			}
			rescanned = true
			if err := r.rescan(); err != nil {
				return nil, err
			}
			continue
		}
		if errors.Is(err, wire.ErrTorn) || errors.Is(err, wire.ErrCorrupt) {
			if r.idx == len(r.segs)-1 && !rescanned {
				// The tear may just be a frame in flight from a live
				// writer — possibly one it completed (and rotated past)
				// while we were reading. Rescan and re-read from the
				// boundary once before judging: a completed frame
				// decodes on the retry, a still-torn one is genuine.
				rescanned = true
				r.closeFile()
				r.off = boundary
				if err := r.rescan(); err != nil {
					return nil, err
				}
				continue
			}
			return r.handleTorn(boundary, err)
		}
		// Unknown codec version or I/O failure: hard error.
		r.closeFile()
		return nil, fmt.Errorf("segment: %s: %w", r.segs[r.idx].name, err)
	}
}

// handleTorn deals with a confirmed torn or corrupt frame at the read
// position: record it, optionally truncate, and either stop cleanly
// (tail of the log), continue with the next segment (repaired mid-log
// tear), or fail (unrepaired mid-log tear).
func (r *Reader) handleTorn(boundary int64, decodeErr error) ([]engine.OfficeAction, error) {
	e := r.segs[r.idx]
	path := filepath.Join(r.dir, e.name)
	info := &TornInfo{Path: path, Offset: boundary, Err: decodeErr}
	if fi, err := os.Stat(path); err == nil {
		info.TornBytes = fi.Size() - boundary
	}
	r.closeFile()
	if r.opt.Repair {
		if err := os.Truncate(path, boundary); err != nil {
			return nil, fmt.Errorf("segment: repair %s: %w", e.name, err)
		}
		info.Repaired = true
	}
	r.torn = info
	if r.idx == len(r.segs)-1 {
		r.off = boundary
		return nil, io.EOF
	}
	if !r.opt.Repair {
		return nil, fmt.Errorf("%w: %s at offset %d (%v)", ErrTornMidLog, e.name, boundary, decodeErr)
	}
	r.idx, r.off = r.idx+1, 0
	return r.Next()
}

// Version returns the wire codec of the last decoded frame (0 before
// the first).
func (r *Reader) Version() wire.Version { return r.ver }

// Torn returns the most recent torn-tail record, if any.
func (r *Reader) Torn() (TornInfo, bool) {
	if r.torn == nil {
		return TornInfo{}, false
	}
	return *r.torn, true
}

// Close releases the open segment file. The Reader is done after this.
func (r *Reader) Close() error {
	r.closeFile()
	return nil
}
