// Segment-directory maintenance: the cold-data half of the bytes-moved
// budget. Three jobs, all driven through the Writer because the Writer
// owns the in-memory manifest and rewrites MANIFEST.json whole at every
// seal — an external process mutating the manifest concurrently would
// race it.
//
//   - Compaction (Compactor): sealed segments older than a cutoff are
//     rewritten frame by frame into flate-compressed wire frames
//     (wire.FlagCompressed at CompactionLevel), atomically — new bytes
//     to a temp file, fsync per policy, rename over the original. The
//     manifest marks the segment Compacted so it is rewritten at most
//     once. Readers need no notice: frames are self-describing, and the
//     decoded actions are byte-identical because compaction preserves
//     payload bytes exactly (DecodeRaw → AppendRawFrameCompressed).
//   - TTL retention (Writer.Retain): sealed segments older than the
//     TTL are deleted, manifest entry first — the order matters: the
//     Reader hard-errors on a manifest naming a missing file, while an
//     unmanifested leftover file is merely replayed as an unsealed
//     tail, so a crash between the manifest write and the unlink is
//     benign.
//   - Replication (Replicator): sealed segments are copied to a second
//     directory (a different disk, or a remote mount), temp + rename,
//     with the replica keeping its own manifest. A compacted segment
//     changes size and is re-shipped; the replica converges to the
//     compacted form. Replication never deletes from the replica — it
//     is the archive retention prunes the primary against.
package segment

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"fadewich/internal/wire"
)

// Compactor parameterises cold-segment compaction: Run rewrites every
// sealed, not-yet-compacted segment sealed at least MinAge ago into
// compressed frames (MinAge 0 compacts everything sealed).
type Compactor struct {
	MinAge time.Duration
}

// CompactResult reports one compaction pass.
type CompactResult struct {
	// Segments is how many segments were rewritten.
	Segments int
	// BytesBefore and BytesAfter are the on-disk sizes of those
	// segments around the rewrite.
	BytesBefore int64
	BytesAfter  int64
}

// RetainResult reports one retention pass.
type RetainResult struct {
	// Segments is how many expired segments were deleted.
	Segments int
	// Bytes is their on-disk size.
	Bytes int64
}

// ReplicateResult reports one replication pass.
type ReplicateResult struct {
	// Segments is how many segments were shipped (new or re-shipped
	// after compaction changed them).
	Segments int
	// Bytes is their on-disk size.
	Bytes int64
}

// MaintainOptions bundles a maintenance pass: each job runs when its
// knob is set, in the safe order — compact, then replicate (so the
// replica converges to compacted bytes), then retain (so an expiring
// segment was shipped before it is pruned).
type MaintainOptions struct {
	// CompactAfter rewrites sealed segments older than this into
	// compressed frames; 0 disables compaction.
	CompactAfter time.Duration
	// Retention deletes sealed segments older than this; 0 keeps
	// everything.
	Retention time.Duration
	// Replica, when non-nil, receives a copy of every sealed segment.
	Replica *Replicator
}

// MaintainResult aggregates one maintenance pass.
type MaintainResult struct {
	Compacted  CompactResult
	Replicated ReplicateResult
	Retained   RetainResult
}

// Maintain runs one maintenance pass per the options. It is not safe
// to call concurrently with Append/Close — stream.SegmentSink
// serialises it behind the sink mutex, same as every other writer
// operation.
func (w *Writer) Maintain(opt MaintainOptions) (MaintainResult, error) {
	var res MaintainResult
	var err error
	if opt.CompactAfter > 0 {
		res.Compacted, err = Compactor{MinAge: opt.CompactAfter}.Run(w)
		if err != nil {
			return res, err
		}
	}
	if opt.Replica != nil {
		res.Replicated, err = w.Replicate(opt.Replica)
		if err != nil {
			return res, err
		}
	}
	if opt.Retention > 0 {
		res.Retained, err = w.Retain(opt.Retention)
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// sealedAt returns when a sealed segment was sealed: the manifest's
// SealedUnix when present, the file's mtime for manifests from before
// the maintenance layer.
func (w *Writer) sealedAt(info Info) time.Time {
	if info.SealedUnix != 0 {
		return time.Unix(info.SealedUnix, 0)
	}
	if fi, err := os.Stat(filepath.Join(w.cfg.Dir, info.Name)); err == nil {
		return fi.ModTime()
	}
	// Missing or unreadable file: let the job that touches it surface
	// the real error; treat it as brand new so age cutoffs skip it.
	return w.now()
}

// Run rewrites every eligible sealed segment into compressed frames
// and replaces the manifest once at the end. A failed rewrite aborts
// the pass; segments already rewritten stay rewritten (their manifest
// entries were not updated yet, so the next pass redoes the rename —
// rewriting is idempotent).
func (c Compactor) Run(w *Writer) (CompactResult, error) {
	var res CompactResult
	if w.closed {
		return res, errors.New("segment: writer closed")
	}
	cutoff := w.now().Add(-c.MinAge)
	changed := false
	for i := range w.man.Sealed {
		info := &w.man.Sealed[i]
		if info.Compacted || w.sealedAt(*info).After(cutoff) {
			continue
		}
		rewritten, err := w.rewriteCompressed(*info)
		if err != nil {
			return res, err
		}
		res.Segments++
		res.BytesBefore += info.Bytes
		res.BytesAfter += rewritten.Bytes
		*info = rewritten
		changed = true
	}
	if changed {
		if err := w.writeManifest(); err != nil {
			return res, err
		}
		if w.cfg.Fsync >= FsyncRotate {
			if err := syncDir(w.cfg.Dir); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// rewriteCompressed rewrites one sealed segment into compressed frames
// and returns its updated manifest entry. Untagged frames are
// re-encoded from their exact payload bytes (DecodeRaw inflates, so
// this also normalises already-compressed frames to CompactionLevel);
// tagged frames — which a sink-written segment should not contain, but
// a copied-in one might — are preserved verbatim, tag and all.
func (w *Writer) rewriteCompressed(info Info) (Info, error) {
	path := filepath.Join(w.cfg.Dir, info.Name)
	data, err := os.ReadFile(path)
	if err != nil {
		return info, fmt.Errorf("segment: compact %s: %w", info.Name, err)
	}
	d := wire.NewDecoder(newByteReader(data))
	var out []byte
	var logical int64
	frames := 0
	for {
		prev := d.Offset()
		v, payload, err := d.DecodeRaw()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A sealed segment must decode end to end; torn or corrupt
			// bytes here are real damage, not a crash tail, and
			// compaction must not paper over them.
			return info, fmt.Errorf("segment: compact %s: %w", info.Name, err)
		}
		if _, tagged := d.Tag(); tagged {
			out = append(out, data[prev:d.Offset()]...)
			logical += d.Offset() - prev
			frames++
			continue
		}
		var lg int
		out, lg, err = wire.AppendRawFrameCompressed(out, v, payload, 0, wire.CompactionLevel)
		if err != nil {
			return info, fmt.Errorf("segment: compact %s: %w", info.Name, err)
		}
		logical += int64(lg)
		frames++
	}
	if frames != info.Frames {
		return info, fmt.Errorf("segment: compact %s: decoded %d frames, manifest says %d", info.Name, frames, info.Frames)
	}
	tmp := path + ".compact"
	if err := writeFileAtomic(tmp, path, out, w.cfg.Fsync >= FsyncRotate); err != nil {
		return info, fmt.Errorf("segment: compact %s: %w", info.Name, err)
	}
	if w.cfg.Fsync >= FsyncRotate {
		if err := syncDir(w.cfg.Dir); err != nil {
			return info, err
		}
	}
	info.Bytes = int64(len(out))
	info.LogicalBytes = logical
	info.Compacted = true
	return info, nil
}

// Retain deletes sealed segments sealed longer than ttl ago: manifest
// entries first (one atomic manifest write), then the files. ttl <= 0
// keeps everything.
func (w *Writer) Retain(ttl time.Duration) (RetainResult, error) {
	var res RetainResult
	if w.closed {
		return res, errors.New("segment: writer closed")
	}
	if ttl <= 0 {
		return res, nil
	}
	cutoff := w.now().Add(-ttl)
	var keep, drop []Info
	for _, info := range w.man.Sealed {
		if w.sealedAt(info).After(cutoff) {
			keep = append(keep, info)
		} else {
			drop = append(drop, info)
		}
	}
	if len(drop) == 0 {
		return res, nil
	}
	w.man.Sealed = keep
	w.stats.Sealed = len(keep)
	if err := w.writeManifest(); err != nil {
		return res, err
	}
	for _, info := range drop {
		if err := os.Remove(filepath.Join(w.cfg.Dir, info.Name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return res, fmt.Errorf("segment: retain: %w", err)
		}
		res.Segments++
		res.Bytes += info.Bytes
	}
	if w.cfg.Fsync >= FsyncRotate {
		if err := syncDir(w.cfg.Dir); err != nil {
			return res, err
		}
	}
	return res, nil
}

// Replicator ships sealed segments to a second directory. It tracks
// what it already copied by name and size, so a pass is cheap when
// nothing changed and a compacted (resized) segment is re-shipped.
// Replicate through one Writer only; the Replicator itself is not
// locked.
type Replicator struct {
	dir    string
	copied map[string]int64 // name -> size already in the replica
	infos  map[string]Info  // manifest entries of everything shipped
}

// NewReplicator opens (creating if needed) the replica directory. An
// existing replica is continued: files already present are recorded by
// size and only re-shipped if the primary's differ.
func NewReplicator(dir string) (*Replicator, error) {
	if dir == "" {
		return nil, errors.New("segment: replicator: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: replicator: %w", err)
	}
	r := &Replicator{dir: dir, copied: make(map[string]int64), infos: make(map[string]Info)}
	ents, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if fi, err := os.Stat(filepath.Join(dir, e.name)); err == nil {
			r.copied[e.name] = fi.Size()
		}
	}
	if man, err := loadManifest(dir); err != nil {
		return nil, err
	} else if man != nil {
		for _, info := range man.Sealed {
			r.infos[info.Name] = info
		}
	}
	return r, nil
}

// Dir returns the replica directory.
func (r *Replicator) Dir() string { return r.dir }

// Replicate copies every sealed segment the replica does not already
// hold at the primary's size, then rewrites the replica's manifest.
// The replica's manifest accumulates — retention on the primary does
// not unship anything.
func (w *Writer) Replicate(r *Replicator) (ReplicateResult, error) {
	var res ReplicateResult
	if w.closed {
		return res, errors.New("segment: writer closed")
	}
	changed := false
	for _, info := range w.man.Sealed {
		if size, ok := r.copied[info.Name]; ok && size == info.Bytes && r.infos[info.Name].Bytes == info.Bytes {
			continue
		}
		data, err := os.ReadFile(filepath.Join(w.cfg.Dir, info.Name))
		if err != nil {
			return res, fmt.Errorf("segment: replicate %s: %w", info.Name, err)
		}
		dst := filepath.Join(r.dir, info.Name)
		if err := writeFileAtomic(dst+".ship", dst, data, w.cfg.Fsync >= FsyncRotate); err != nil {
			return res, fmt.Errorf("segment: replicate %s: %w", info.Name, err)
		}
		r.copied[info.Name] = int64(len(data))
		r.infos[info.Name] = info
		res.Segments++
		res.Bytes += int64(len(data))
		changed = true
	}
	if changed {
		if err := r.writeManifest(w.cfg.Fsync >= FsyncRotate); err != nil {
			return res, err
		}
		if w.cfg.Fsync >= FsyncRotate {
			if err := syncDir(r.dir); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// writeManifest writes the replica's accumulated manifest atomically,
// sorted by sequence number like the primary's.
func (r *Replicator) writeManifest(fsync bool) error {
	man := manifest{Schema: 1}
	for _, info := range r.infos {
		man.Sealed = append(man.Sealed, info)
	}
	sort.Slice(man.Sealed, func(i, j int) bool { return man.Sealed[i].Seq < man.Sealed[j].Seq })
	data, err := marshalManifest(&man)
	if err != nil {
		return err
	}
	dst := filepath.Join(r.dir, ManifestName)
	if err := writeFileAtomic(dst+".tmp", dst, data, fsync); err != nil {
		return fmt.Errorf("segment: replica manifest: %w", err)
	}
	return nil
}

// writeFileAtomic writes data to tmp, optionally fsyncs, and renames
// it over dst.
func writeFileAtomic(tmp, dst string, data []byte, fsync bool) error {
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, dst)
}

// byteReader adapts a byte slice to io.Reader for the compactor's
// decoder without pulling in bytes.Reader's extra surface.
type byteReader struct {
	s []byte
}

func newByteReader(s []byte) *byteReader { return &byteReader{s: s} }

func (b *byteReader) Read(p []byte) (int, error) {
	if len(b.s) == 0 {
		return 0, io.EOF
	}
	n := copy(p, b.s)
	b.s = b.s[n:]
	return n, nil
}
