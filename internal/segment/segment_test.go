package segment

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"testing"
	"time"

	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/wire"
)

// mkBatch builds n actions for one office starting at baseTime, spaced
// 0.1 s apart.
func mkBatch(office int, baseTime float64, n int) []engine.OfficeAction {
	out := make([]engine.OfficeAction, n)
	for i := range out {
		out[i] = engine.OfficeAction{
			Office: office,
			Action: core.Action{
				Time:        baseTime + float64(i)*0.1,
				Type:        core.ActionDeauthenticate,
				Workstation: i % 3,
				Cause:       control.CauseTimeout,
			},
		}
	}
	return out
}

// readAll drains a Reader.
func readAll(t *testing.T, r *Reader) []engine.OfficeAction {
	t.Helper()
	var out []engine.OfficeAction
	for {
		acts, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, acts...)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, v := range []wire.Version{wire.V1JSONL, wire.V2Binary} {
		dir := t.TempDir()
		w, err := NewWriter(Config{Dir: dir, Version: v})
		if err != nil {
			t.Fatal(err)
		}
		var want []engine.OfficeAction
		for i := 0; i < 7; i++ {
			b := mkBatch(i%3, float64(1+i*10), 5)
			if err := w.Append(b); err != nil {
				t.Fatal(err)
			}
			want = append(want, b...)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
		r, err := OpenDir(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := readAll(t, r)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: replay differs: %d vs %d actions", v, len(got), len(want))
		}
		if r.Version() != v {
			t.Fatalf("reader reports codec %v, want %v", r.Version(), v)
		}
		if _, torn := r.Torn(); torn {
			t.Fatal("clean log reports a torn tail")
		}
		r.Close()
	}
}

func TestRotationBySizeAndManifest(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, MaxSegmentBytes: 600, Fsync: FsyncRotate})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(mkBatch(0, float64(1+i), 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Sealed < 2 {
		t.Fatalf("expected rotation, got %d sealed segments", st.Sealed)
	}
	if st.Frames != 10 {
		t.Fatalf("stats count %d frames, want 10", st.Frames)
	}
	man, err := loadManifest(dir)
	if err != nil || man == nil {
		t.Fatalf("manifest: %v (nil=%v)", err, man == nil)
	}
	if len(man.Sealed) != st.Sealed {
		t.Fatalf("manifest seals %d segments, stats say %d", len(man.Sealed), st.Sealed)
	}
	namePat := regexp.MustCompile(`^segment-\d{6}-\d{12}\.fwl$`)
	var prevSeq uint64
	for i, info := range man.Sealed {
		if !namePat.MatchString(info.Name) {
			t.Fatalf("segment name %q does not match segment-<seq>-<firsttick>.fwl", info.Name)
		}
		if i > 0 && info.Seq <= prevSeq {
			t.Fatalf("manifest seqs not ascending: %d after %d", info.Seq, prevSeq)
		}
		prevSeq = info.Seq
		if info.MinTime > info.MaxTime || info.Frames == 0 || info.Bytes == 0 {
			t.Fatalf("bad manifest entry %+v", info)
		}
		fi, err := os.Stat(filepath.Join(dir, info.Name))
		if err != nil || fi.Size() != info.Bytes {
			t.Fatalf("sealed segment %s: stat %v, size %d vs manifest %d", info.Name, err, fi.Size(), info.Bytes)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temporary manifest left behind")
	}
}

func TestRotationByAge(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, MaxSegmentAge: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1000, 0)
	w.now = func() time.Time { return clock }
	if err := w.Append(mkBatch(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(30 * time.Second)
	if err := w.Append(mkBatch(0, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Sealed; got != 0 {
		t.Fatalf("rotated after 30s with a 1m age limit (%d sealed)", got)
	}
	clock = clock.Add(31 * time.Second)
	if err := w.Append(mkBatch(0, 3, 2)); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Sealed; got != 1 {
		t.Fatalf("age rotation did not fire (%d sealed)", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(mkBatch(0, float64(i+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Stats().Syncs < 3 {
		t.Fatalf("FsyncAlways synced %d times for 3 frames", w.Stats().Syncs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// crashDir builds a directory whose last (unsealed) segment ends in a
// torn frame: frames are appended without Close — the writer just
// stops, like a killed process — and the file is then cut cutBytes
// short of the last frame boundary. It returns the directory, the full
// action stream, and the actions of the surviving whole frames.
func crashDir(t *testing.T, batches [][]engine.OfficeAction, cutBytes int64) (dir string, all, intact []engine.OfficeAction) {
	t.Helper()
	dir = t.TempDir()
	w, err := NewWriter(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	// No Close: the process "crashed". Cut the active segment mid-frame.
	name := w.Stats().Open
	path := filepath.Join(dir, name)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame, err := wire.AppendFrame(nil, wire.V1JSONL, batches[len(batches)-1])
	if err != nil {
		t.Fatal(err)
	}
	if cutBytes >= int64(len(lastFrame)) {
		t.Fatalf("cut %d bytes would erase the whole %d-byte last frame", cutBytes, len(lastFrame))
	}
	if err := os.Truncate(path, fi.Size()-cutBytes); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:len(batches)-1] {
		intact = append(intact, b...)
	}
	return dir, all, intact
}

// TestCrashRecoveryTruncatesTornFrame is the crash-recovery
// acceptance: a segment writer killed mid-frame must replay exactly the
// pre-crash prefix, byte for byte on the wire, and Repair must truncate
// the torn frame in place.
func TestCrashRecoveryTruncatesTornFrame(t *testing.T) {
	var batches [][]engine.OfficeAction
	for i := 0; i < 6; i++ {
		batches = append(batches, mkBatch(i%2, float64(1+i*5), 4))
	}
	dir, all, intact := crashDir(t, batches, 7)

	r, err := OpenDir(dir, Options{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	if !reflect.DeepEqual(got, intact) {
		t.Fatalf("replay after crash: %d actions, want the %d-action intact prefix", len(got), len(intact))
	}
	// Byte-for-byte: the replayed stream re-encodes to an exact prefix
	// of the full stream's wire encoding.
	fullJSONL := wire.AppendJSONL(nil, all)
	gotJSONL := wire.AppendJSONL(nil, got)
	if !bytes.HasPrefix(fullJSONL, gotJSONL) {
		t.Fatal("replayed JSONL is not a byte prefix of the pre-crash stream")
	}
	info, torn := r.Torn()
	if !torn || !info.Repaired || info.TornBytes <= 0 {
		t.Fatalf("torn tail not reported/repaired: %+v (torn=%v)", info, torn)
	}
	if fi, err := os.Stat(info.Path); err != nil || fi.Size() != info.Offset {
		t.Fatalf("repair did not truncate to the boundary: size %d, want %d (%v)", fi.Size(), info.Offset, err)
	}
	r.Close()

	// After repair the directory reads clean.
	r2, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again := readAll(t, r2); !reflect.DeepEqual(again, intact) {
		t.Fatal("post-repair replay differs")
	}
	if _, torn := r2.Torn(); torn {
		t.Fatal("post-repair replay still reports a torn tail")
	}
	r2.Close()
}

// TestCrashWithoutRepairStopsBeforeTornTail checks the read-only
// default: the torn tail is reported but the file is left alone.
func TestCrashWithoutRepairStopsBeforeTornTail(t *testing.T) {
	var batches [][]engine.OfficeAction
	for i := 0; i < 3; i++ {
		batches = append(batches, mkBatch(0, float64(1+i), 2))
	}
	dir, _, intact := crashDir(t, batches, 3)
	r, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	if !reflect.DeepEqual(got, intact) {
		t.Fatalf("replay: %d actions, want %d", len(got), len(intact))
	}
	info, torn := r.Torn()
	if !torn || info.Repaired {
		t.Fatalf("expected an unrepaired torn record, got %+v (torn=%v)", info, torn)
	}
	if fi, err := os.Stat(info.Path); err != nil || fi.Size() != info.Offset+info.TornBytes {
		t.Fatalf("read-only replay modified the file: %v size %d", err, fi.Size())
	}
	r.Close()
}

// TestTornMidLog covers a crashed writer generation followed by a
// restart: the old tail is torn, a newer segment exists. Without Repair
// that is a hard error; with Repair the reader truncates and stitches
// the stream back together.
func TestTornMidLog(t *testing.T) {
	dir := t.TempDir()
	w1, err := NewWriter(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := mkBatch(0, 1, 3), mkBatch(0, 2, 3)
	if err := w1.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := w1.Append(b2); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close. Tear the tail frame.
	path := filepath.Join(dir, w1.Stats().Open)
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	// Restart: a new writer generation appends a fresh segment.
	w2, err := NewWriter(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b3 := mkBatch(0, 3, 3)
	if err := w2.Append(b3); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var readErr error
	for {
		if _, readErr = r.Next(); readErr != nil {
			break
		}
	}
	if !errors.Is(readErr, ErrTornMidLog) {
		t.Fatalf("mid-log tear surfaced as %v, want ErrTornMidLog", readErr)
	}
	r.Close()

	r2, err := OpenDir(dir, Options{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]engine.OfficeAction(nil), b1...), b3...)
	if got := readAll(t, r2); !reflect.DeepEqual(got, want) {
		t.Fatalf("repaired mid-log replay: %d actions, want %d (pre-crash prefix + restart)", len(got), len(want))
	}
	r2.Close()
}

func TestFilteredCursors(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, MaxSegmentBytes: 400})
	if err != nil {
		t.Fatal(err)
	}
	var all []engine.OfficeAction
	for i := 0; i < 12; i++ {
		b := mkBatch(i%3, float64(1+i*10), 2)
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	filter := func(opt Options) []engine.OfficeAction {
		t.Helper()
		r, err := OpenDir(dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		return readAll(t, r)
	}
	manual := func(pred func(engine.OfficeAction) bool) []engine.OfficeAction {
		var out []engine.OfficeAction
		for _, a := range all {
			if pred(a) {
				out = append(out, a)
			}
		}
		return out
	}

	got := filter(Options{Offices: []int{1}})
	want := manual(func(a engine.OfficeAction) bool { return a.Office == 1 })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("office filter: %d actions, want %d", len(got), len(want))
	}
	got = filter(Options{FromTime: 41, ToTime: 80})
	want = manual(func(a engine.OfficeAction) bool { return a.Action.Time >= 41 && a.Action.Time <= 80 })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("time filter: %d actions, want %d", len(got), len(want))
	}
	got = filter(Options{Offices: []int{0, 2}, FromTime: 30})
	want = manual(func(a engine.OfficeAction) bool { return a.Office != 1 && a.Action.Time >= 30 })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("combined filter: %d actions, want %d", len(got), len(want))
	}
}

// TestManifestSkipsSealedSegments proves the FromTime fast path really
// skips files: an early sealed segment is overwritten with garbage, and
// a FromTime query past its MaxTime still succeeds because the reader
// never opens it.
func TestManifestSkipsSealedSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, MaxSegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(mkBatch(0, float64(1+i*10), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := loadManifest(dir)
	if err != nil || man == nil || len(man.Sealed) < 3 {
		t.Fatalf("need at least 3 sealed segments, have %+v (%v)", man, err)
	}
	first := man.Sealed[0]
	if err := os.WriteFile(filepath.Join(dir, first.Name), []byte("garbage, not frames"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDir(dir, Options{FromTime: first.MaxTime + 1})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	if len(got) == 0 {
		t.Fatal("skip query returned nothing")
	}
	for _, a := range got {
		if a.Action.Time < first.MaxTime+1 {
			t.Fatalf("action at %v leaked through the FromTime filter", a.Action.Time)
		}
	}
	r.Close()
}

// TestFollowPicksUpNewData polls the reader like fadewich-tail -follow:
// new frames in the active segment and whole new segments appear across
// io.EOF boundaries.
func TestFollowPicksUpNewData(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, MaxSegmentBytes: 250})
	if err != nil {
		t.Fatal(err)
	}
	b1 := mkBatch(0, 1, 2)
	if err := w.Append(b1); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, r); !reflect.DeepEqual(got, b1) {
		t.Fatalf("first poll read %d actions, want %d", len(got), len(b1))
	}
	// Same segment grows.
	b2 := mkBatch(0, 2, 1)
	if err := w.Append(b2); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, r); !reflect.DeepEqual(got, b2) {
		t.Fatalf("second poll read %d actions, want %d", len(got), len(b2))
	}
	// Force a rotation into a brand-new segment.
	b3 := mkBatch(0, 3, 6)
	if err := w.Append(b3); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Sealed < 2 {
		t.Fatalf("rotation did not happen (%d sealed)", w.Stats().Sealed)
	}
	if got := readAll(t, r); !reflect.DeepEqual(got, b3) {
		t.Fatalf("third poll read %d actions, want %d", len(got), len(b3))
	}
	r.Close()
}

func TestOpenDirEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty dir Next returned %v, want io.EOF", err)
	}
	r.Close()
	if _, err := OpenDir(filepath.Join(dir, "nope"), Options{}); err == nil {
		t.Fatal("missing directory opened")
	}
}

func TestManifestNamesMissingFile(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, MaxSegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := w.Append(mkBatch(0, float64(i+1), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	man, _ := loadManifest(dir)
	if err := os.Remove(filepath.Join(dir, man.Sealed[0].Name)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, Options{}); err == nil {
		t.Fatal("manifest naming a missing segment opened cleanly")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncNever, FsyncRotate, FsyncAlways} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Fatal("unknown policy parsed")
	}
}

// TestWriterSealedAccessor checks that Sealed() mirrors the on-disk
// manifest, and that a second writer generation continuing the same
// directory reports the inherited seals even though its own Stats
// counter starts at zero.
func TestWriterSealedAccessor(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, MaxSegmentBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(mkBatch(0, float64(1+i), 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := loadManifest(dir)
	if err != nil || man == nil {
		t.Fatalf("manifest: %v (nil=%v)", err, man == nil)
	}
	if got := w.Sealed(); !reflect.DeepEqual(got, man.Sealed) {
		t.Fatalf("Sealed() diverges from the manifest:\ngot  %+v\nwant %+v", got, man.Sealed)
	}
	got := w.Sealed()
	got[0].Frames = -1
	if w.Sealed()[0].Frames == -1 {
		t.Fatal("Sealed() returned the writer's internal slice, not a copy")
	}

	w2, err := NewWriter(Config{Dir: dir, MaxSegmentBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := len(w2.Sealed()); got != len(man.Sealed) || got != w2.Stats().Sealed {
		t.Fatalf("fresh generation sees %d inherited seals (stats %d), want %d",
			got, w2.Stats().Sealed, len(man.Sealed))
	}
}
