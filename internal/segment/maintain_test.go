package segment

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fadewich/internal/engine"
	"fadewich/internal/wire"
)

// sealedDir writes n sealed segments of compressible batches under a
// pinned clock that advances one minute per batch, plus an active
// (unsealed) tail, and returns the writer (still open), the clock's
// final value and the full action stream.
func sealedDir(t *testing.T, dir string, n int, cfg Config) (*Writer, time.Time, []engine.OfficeAction) {
	t.Helper()
	cfg.Dir = dir
	if cfg.MaxSegmentBytes == 0 {
		cfg.MaxSegmentBytes = 1 // every batch seals its own segment
	}
	w, err := NewWriter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(100000, 0)
	w.now = func() time.Time { return clock }
	var all []engine.OfficeAction
	for i := 0; i < n+1; i++ {
		b := mkBatch(i%3, float64(1+i*100), 40)
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
		clock = clock.Add(time.Minute)
	}
	if got := w.Stats().Sealed; got != n {
		t.Fatalf("sealed %d segments, want %d", got, n)
	}
	return w, clock, all
}

func TestCompactorRewritesColdSegments(t *testing.T) {
	dir := t.TempDir()
	w, _, all := sealedDir(t, dir, 4, Config{})
	defer w.Close()

	var before int64
	for _, info := range w.Sealed() {
		before += info.Bytes
	}
	// Sealed ages are 4, 3, 2 and 1 minutes; a 2.5-minute MinAge leaves
	// the two most recently sealed segments warm and untouched.
	res, err := Compactor{MinAge: 2*time.Minute + 30*time.Second}.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 2 {
		t.Fatalf("compacted %d segments, want 2 (the cold ones)", res.Segments)
	}
	if res.BytesAfter >= res.BytesBefore {
		t.Fatalf("compaction grew the segments: %d -> %d bytes", res.BytesBefore, res.BytesAfter)
	}
	for i, info := range w.Sealed() {
		wantCompacted := i < 2
		if info.Compacted != wantCompacted {
			t.Fatalf("segment %d: compacted=%v, want %v", i, info.Compacted, wantCompacted)
		}
		fi, err := os.Stat(filepath.Join(dir, info.Name))
		if err != nil || fi.Size() != info.Bytes {
			t.Fatalf("segment %s: size %d vs manifest %d (%v)", info.Name, fi.Size(), info.Bytes, err)
		}
		if wantCompacted && info.LogicalBytes <= info.Bytes {
			t.Fatalf("segment %s: logical %d not larger than on-disk %d", info.Name, info.LogicalBytes, info.Bytes)
		}
	}

	// A second pass with MinAge 0 compacts the remaining two and leaves
	// the already-compacted ones alone.
	res, err = Compactor{}.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 2 {
		t.Fatalf("second pass compacted %d segments, want 2", res.Segments)
	}
	if res, err = (Compactor{}).Run(w); err != nil || res.Segments != 0 {
		t.Fatalf("third pass not a no-op: %+v, %v", res, err)
	}

	// Decoded output is untouched by compaction — same actions, and the
	// same JSONL bytes they re-encode to.
	r, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	r.Close()
	if !reflect.DeepEqual(got, all) {
		t.Fatalf("replay after compaction differs: %d vs %d actions", len(got), len(all))
	}

	var after int64
	for _, info := range w.Sealed() {
		after += info.Bytes
	}
	if after*2 >= before {
		t.Fatalf("compaction shrank sealed bytes only %d -> %d, want at least 2x", before, after)
	}
}

func TestCompressedWriterShrinksAndReplays(t *testing.T) {
	plainDir, compDir := t.TempDir(), t.TempDir()
	wp, _, all := sealedDir(t, plainDir, 4, Config{})
	wc, _, allC := sealedDir(t, compDir, 4, Config{Compress: true})
	if err := wp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, allC) {
		t.Fatal("fixture streams differ")
	}
	st := wc.Stats()
	if st.WireBytes >= st.Bytes {
		t.Fatalf("compressed writer: %d wire bytes for %d logical", st.WireBytes, st.Bytes)
	}
	if pst := wp.Stats(); pst.WireBytes != pst.Bytes {
		t.Fatalf("plain writer: wire %d != logical %d", pst.WireBytes, pst.Bytes)
	}
	r, err := OpenDir(compDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	r.Close()
	if !reflect.DeepEqual(got, all) {
		t.Fatal("compressed directory replays differently")
	}
}

func TestRetainDeletesExpiredSegments(t *testing.T) {
	dir := t.TempDir()
	w, _, all := sealedDir(t, dir, 4, Config{Fsync: FsyncRotate})
	defer w.Close()

	sealedBefore := w.Sealed()
	// Sealed ages are 4, 3, 2 and 1 minutes; a 2.5-minute TTL expires
	// the two oldest sealed segments.
	res, err := w.Retain(2*time.Minute + 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 2 || res.Bytes != sealedBefore[0].Bytes+sealedBefore[1].Bytes {
		t.Fatalf("retained %d segments / %d bytes, want the 2 oldest", res.Segments, res.Bytes)
	}
	left := w.Sealed()
	if len(left) != 2 || left[0].Name != sealedBefore[2].Name {
		t.Fatalf("manifest after retention: %+v", left)
	}
	for _, info := range sealedBefore[:2] {
		if _, err := os.Stat(filepath.Join(dir, info.Name)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("expired segment %s still on disk (%v)", info.Name, err)
		}
	}
	if w.Stats().Sealed != 2 {
		t.Fatalf("stats still count %d sealed segments", w.Stats().Sealed)
	}

	// The directory still opens and replays the surviving suffix; the
	// active tail is never retention's business.
	r, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	r.Close()
	if want := all[2*40:]; !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after retention: %d actions, want %d", len(got), len(want))
	}

	// TTL 0 keeps everything.
	if res, err := w.Retain(0); err != nil || res.Segments != 0 {
		t.Fatalf("ttl 0 deleted %d segments (%v)", res.Segments, err)
	}
}

func TestReplicateShipsSealedSegments(t *testing.T) {
	dir, replicaDir := t.TempDir(), t.TempDir()
	w, _, all := sealedDir(t, dir, 3, Config{})
	defer w.Close()

	rep, err := NewReplicator(replicaDir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Replicate(rep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 3 {
		t.Fatalf("replicated %d segments, want 3", res.Segments)
	}
	// Idempotent when nothing changed.
	if res, err := w.Replicate(rep); err != nil || res.Segments != 0 {
		t.Fatalf("second pass re-shipped %d segments (%v)", res.Segments, err)
	}

	// The replica replays the sealed prefix (the active tail is not
	// shipped until sealed).
	r, err := OpenDir(replicaDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	r.Close()
	if want := all[:3*40]; !reflect.DeepEqual(got, want) {
		t.Fatalf("replica replays %d actions, want %d", len(got), len(want))
	}

	// Compaction changes sealed sizes; the next pass re-ships exactly
	// those, and the replica converges to the compacted bytes.
	if _, err := (Compactor{}).Run(w); err != nil {
		t.Fatal(err)
	}
	res, err = w.Replicate(rep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 3 {
		t.Fatalf("post-compaction pass re-shipped %d segments, want 3", res.Segments)
	}
	for _, info := range w.Sealed() {
		fi, err := os.Stat(filepath.Join(replicaDir, info.Name))
		if err != nil || fi.Size() != info.Bytes {
			t.Fatalf("replica %s: size %d vs primary manifest %d (%v)", info.Name, fi.Size(), info.Bytes, err)
		}
	}

	// Retention pruning the primary leaves the replica's archive whole.
	if _, err := w.Retain(time.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if len(w.Sealed()) != 0 {
		t.Fatal("primary retention left sealed entries")
	}
	r2, err := OpenDir(replicaDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	again := readAll(t, r2)
	r2.Close()
	if !reflect.DeepEqual(again, got) {
		t.Fatal("primary retention changed the replica")
	}
}

func TestMaintainRunsAllJobsInOrder(t *testing.T) {
	dir, replicaDir := t.TempDir(), t.TempDir()
	w, _, _ := sealedDir(t, dir, 4, Config{})
	defer w.Close()
	rep, err := NewReplicator(replicaDir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Maintain(MaintainOptions{
		CompactAfter: time.Minute,
		Retention:    2*time.Minute + 30*time.Second,
		Replica:      rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compacted.Segments != 4 {
		t.Fatalf("compacted %d, want all 4 sealed", res.Compacted.Segments)
	}
	if res.Replicated.Segments != 4 {
		t.Fatalf("replicated %d, want 4 (shipped before retention prunes)", res.Replicated.Segments)
	}
	if res.Retained.Segments != 2 {
		t.Fatalf("retained %d, want the 2 expired", res.Retained.Segments)
	}
	// The expired segments were replicated (compacted) before deletion.
	repMan, err := loadManifest(replicaDir)
	if err != nil || repMan == nil || len(repMan.Sealed) != 4 {
		t.Fatalf("replica manifest: %v (%+v)", err, repMan)
	}
	for _, info := range repMan.Sealed {
		if !info.Compacted {
			t.Fatalf("replica holds uncompacted entry %+v", info)
		}
	}
}

// TestCrashRecoveryTruncatesTornCompressedFrame is the compressed twin
// of TestCrashRecoveryTruncatesTornFrame: a writer with Compress on,
// killed mid-frame, must replay exactly the pre-crash prefix and
// Repair must truncate the torn compressed frame at the same clean
// boundary an uncompressed tail would use.
func TestCrashRecoveryTruncatesTornCompressedFrame(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]engine.OfficeAction
	for i := 0; i < 5; i++ {
		batches = append(batches, mkBatch(i%2, float64(1+i*10), 40))
	}
	var all, intact []engine.OfficeAction
	for _, b := range batches {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	for _, b := range batches[:len(batches)-1] {
		intact = append(intact, b...)
	}
	// No Close: the process "crashed". Cut into the last (compressed)
	// frame. The frame must really be compressed for the test to mean
	// anything.
	lastFrame, _, err := wire.AppendFrameCompressed(nil, wire.V1JSONL, batches[len(batches)-1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if lastFrame[3]&wire.FlagCompressed == 0 {
		t.Fatal("fixture batch did not compress; enlarge it")
	}
	name := w.Stats().Open
	path := filepath.Join(dir, name)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(len(lastFrame)) / 2
	if err := os.Truncate(path, fi.Size()-cut); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDir(dir, Options{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	if !reflect.DeepEqual(got, intact) {
		t.Fatalf("replay after crash: %d actions, want the %d-action intact prefix", len(got), len(intact))
	}
	info, torn := r.Torn()
	if !torn || !info.Repaired || info.TornBytes <= 0 {
		t.Fatalf("torn compressed tail not reported/repaired: %+v (torn=%v)", info, torn)
	}
	if fi, err := os.Stat(info.Path); err != nil || fi.Size() != info.Offset {
		t.Fatalf("repair did not truncate to the boundary: size %d, want %d (%v)", fi.Size(), info.Offset, err)
	}
	r.Close()

	// Post-repair the directory reads clean and a fresh writer appends
	// compressed frames after the repaired boundary.
	w2, err := NewWriter(Config{Dir: dir, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	extra := mkBatch(1, 900, 40)
	if err := w2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got = readAll(t, r2)
	r2.Close()
	want := append(append([]engine.OfficeAction(nil), intact...), extra...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-repair replay+append: %d actions, want %d", len(got), len(want))
	}
}

func TestAppendEncodedMatchesAppend(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	wa, err := NewWriter(Config{Dir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	wb, err := NewWriter(Config{Dir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	var frame []byte
	for i := 0; i < 5; i++ {
		b := mkBatch(i%2, float64(1+i*10), 8)
		if err := wa.Append(b); err != nil {
			t.Fatal(err)
		}
		frame, err = wire.AppendFrame(frame[:0], wire.V1JSONL, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := wb.AppendEncoded(frame, len(frame), b); err != nil {
			t.Fatal(err)
		}
	}
	if err := wa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	sa, sb := wa.Stats(), wb.Stats()
	if sa.Frames != sb.Frames || sa.Bytes != sb.Bytes || sa.WireBytes != sb.WireBytes {
		t.Fatalf("stats diverge: %+v vs %+v", sa, sb)
	}
	ra, err := OpenDir(dirA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := OpenDir(dirB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := readAll(t, ra), readAll(t, rb)
	ra.Close()
	rb.Close()
	if !reflect.DeepEqual(ga, gb) {
		t.Fatal("AppendEncoded directory replays differently from Append")
	}
	if err := wb.AppendEncoded([]byte("definitely not a frame"), 0, mkBatch(0, 1, 1)); err == nil {
		t.Fatal("AppendEncoded accepted junk on a closed writer") // closed + junk: either error is fine, nil is not
	}
}
