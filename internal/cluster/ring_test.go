package cluster

import (
	"fmt"
	"testing"
)

// TestRingGoldenAssignments pins the assignment of the first twelve
// canonical office names on a three-worker default ring. The table
// guards hash stability: ring assignments must be reproducible across
// builds, or a restarted coordinator would reshuffle a running fleet.
func TestRingGoldenAssignments(t *testing.T) {
	r, err := NewRing([]string{"w1", "w2", "w3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"o00": "w2",
		"o01": "w2",
		"o02": "w2",
		"o03": "w3",
		"o04": "w1",
		"o05": "w3",
		"o06": "w2",
		"o07": "w2",
		"o08": "w3",
		"o09": "w3",
		"o10": "w2",
		"o11": "w1",
	}
	for key, want := range golden {
		if got := r.Assign(key); got != want {
			t.Errorf("Assign(%q) = %q, want %q (ring hash drifted)", key, got, want)
		}
	}
}

// TestRingDistribution bounds the share of 10 000 keys each of three
// workers owns: no worker may stray past ±35%% of the fair third. The
// bound is what DefaultReplicas points per worker buys.
func TestRingDistribution(t *testing.T) {
	workers := []string{"w1", "w2", "w3"}
	r, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 10000
	counts := make(map[string]int, len(workers))
	for i := 0; i < keys; i++ {
		counts[r.Assign(fmt.Sprintf("key-%d", i))]++
	}
	fair := keys / len(workers)
	lo, hi := fair*65/100, fair*135/100
	for _, w := range workers {
		if counts[w] < lo || counts[w] > hi {
			t.Errorf("worker %s owns %d of %d keys, outside [%d, %d]", w, counts[w], keys, lo, hi)
		}
	}
}

// TestRingMovementOnJoin pins the minimal-movement property exactly: a
// key changes owner when a worker joins if and only if the new worker
// is its new owner. Everything that does not move to the joiner stays
// put.
func TestRingMovementOnJoin(t *testing.T) {
	before, err := NewRing([]string{"w1", "w2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"w1", "w2", "w3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key-%d", i)
		b, a := before.Assign(key), after.Assign(key)
		if b != a {
			moved++
			if a != "w3" {
				t.Fatalf("key %q moved %s→%s on w3 join; only moves onto w3 are allowed", key, b, a)
			}
		} else if a == "w3" {
			t.Fatalf("key %q owned by w3 both before and after its join", key)
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the joining worker")
	}
}

// TestRingMovementOnLeave is the inverse: when a worker leaves, exactly
// its keys move, and every other assignment is untouched.
func TestRingMovementOnLeave(t *testing.T) {
	before, err := NewRing([]string{"w1", "w2", "w3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"w1", "w2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key-%d", i)
		b, a := before.Assign(key), after.Assign(key)
		if b == "w3" {
			if a == "w3" {
				t.Fatalf("key %q still owned by departed w3", key)
			}
		} else if b != a {
			t.Fatalf("key %q moved %s→%s though its owner did not leave", key, b, a)
		}
	}
}

// TestRingOrderIndependence: membership order must not affect
// assignments (the coordinator keeps workers in join order, the ring
// must not care).
func TestRingOrderIndependence(t *testing.T) {
	a, err := NewRing([]string{"w1", "w2", "w3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"w3", "w1", "w2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Assign(key) != b.Assign(key) {
			t.Fatalf("key %q assigned differently under permuted membership", key)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"w1", ""}, 0); err == nil {
		t.Error("empty worker name accepted")
	}
	if _, err := NewRing([]string{"w1", "w1"}, 0); err == nil {
		t.Error("duplicate worker accepted")
	}
}
