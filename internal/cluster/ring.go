package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultReplicas is the number of ring points per worker when
// RingConfig leaves it zero. 128 points per worker keeps the
// distribution within a few percent of even for realistic fleet sizes
// (TestRingDistribution pins the bound).
const DefaultReplicas = 128

// Ring is a consistent-hash ring over worker names: office names hash
// onto the ring and are owned by the next worker point clockwise.
// Workers joining or leaving move only the keys on the arcs they gain
// or lose — the minimal-movement property TestRingMovement pins
// exactly. A Ring is immutable after construction; membership changes
// build a new Ring.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by (hash, worker)
	workers  []string    // sorted, deduplicated
}

// ringPoint is one virtual node: worker w's i-th point at hash h.
type ringPoint struct {
	hash   uint64
	worker string
}

// hashKey is the ring's hash function: 64-bit FNV-1a finished with a
// murmur-style avalanche mixer. Bare FNV-1a has poor high-bit
// diffusion on short sequential keys ("o00", "o01", …) — without the
// finisher a whole fleet's offices land on one arc. The composition is
// stable across platforms and Go versions, so assignments are
// reproducible and the golden assignment table in the tests stays
// valid.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NewRing builds a ring over the given workers with the given number of
// points per worker (0 selects DefaultReplicas). Worker names must be
// non-empty and unique.
func NewRing(workers []string, replicas int) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one worker")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(workers))
	sorted := make([]string, 0, len(workers))
	for _, w := range workers {
		if w == "" {
			return nil, fmt.Errorf("cluster: empty worker name")
		}
		if seen[w] {
			return nil, fmt.Errorf("cluster: duplicate worker %q", w)
		}
		seen[w] = true
		sorted = append(sorted, w)
	}
	sort.Strings(sorted)
	r := &Ring{
		replicas: replicas,
		points:   make([]ringPoint, 0, len(sorted)*replicas),
		workers:  sorted,
	}
	for _, w := range sorted {
		for i := 0; i < replicas; i++ {
			// The point key separates worker from index with a NUL so
			// distinct (worker, index) pairs cannot collide textually.
			r.points = append(r.points, ringPoint{hashKey(w + "\x00" + strconv.Itoa(i)), w})
		}
	}
	// Sorting ties by worker name makes ownership deterministic even in
	// the astronomically-unlikely event of a point hash collision.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r, nil
}

// Workers returns the ring membership, sorted.
func (r *Ring) Workers() []string {
	return append([]string(nil), r.workers...)
}

// Assign returns the worker owning the given key: the first ring point
// at or clockwise of the key's hash, wrapping at the top.
func (r *Ring) Assign(key string) string {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].worker
}
