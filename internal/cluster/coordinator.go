package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"

	"fadewich/internal/core"
	"fadewich/internal/serve"
)

// CoordinatorConfig parameterises a Coordinator.
type CoordinatorConfig struct {
	// SpecPath is the full fleet spec the coordinator shards (required).
	// Its offices must NOT carry gids — the coordinator owns gid
	// assignment.
	SpecPath string
	// Workers is the initial worker set, in the order their wire source
	// IDs are assigned (worker i gets source i+1).
	Workers []string
	// Replicas is the ring points per worker (0 selects
	// DefaultReplicas).
	Replicas int
}

// assignment is the coordinator's record of one office's placement.
type assignment struct {
	gid    int
	worker string
	cfg    core.Config
}

// Coordinator owns the cluster's desired state: the full fleet spec,
// the worker set, and the office→worker assignment with its gid
// bookkeeping. It serves per-worker sub-specs over HTTP (it implements
// http.Handler) and recomputes assignments on spec reload and worker
// set changes. All methods are safe for concurrent use.
type Coordinator struct {
	mu       sync.Mutex
	specPath string
	replicas int
	workers  []string // current membership, in join order
	sources  map[string]uint8
	nextSrc  uint8
	spec     *serve.Spec
	resolved []serve.ResolvedOffice
	assign   map[string]assignment
	nextGID  int
	gen      uint64
	reloads  uint64
	mux      *http.ServeMux
}

// NewCoordinator loads and shards the spec over the initial workers.
// Gids assign 0..n−1 in spec order — the same IDs a single-process
// fleet of the full spec would use, which is what anchors the cluster's
// byte-identity guarantee.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.SpecPath == "" {
		return nil, fmt.Errorf("cluster: coordinator needs a spec path")
	}
	c := &Coordinator{
		specPath: cfg.SpecPath,
		replicas: cfg.Replicas,
		sources:  make(map[string]uint8),
		assign:   make(map[string]assignment),
	}
	if err := c.setWorkersLocked(cfg.Workers); err != nil {
		return nil, err
	}
	if err := c.reloadLocked(); err != nil {
		return nil, err
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET /v1/assignments", c.handleAssignments)
	c.mux.HandleFunc("GET /v1/shard/{worker}", c.handleShard)
	c.mux.HandleFunc("PUT /v1/workers", c.handleWorkers)
	c.mux.HandleFunc("POST /v1/reload", c.handleReload)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// setWorkersLocked installs a new worker set, assigning wire source IDs
// to first-seen names from a monotonic counter. Source IDs are never
// reused: a worker that leaves and rejoins keeps its ID, and a new
// worker can never inherit a departed worker's ID — the router's
// per-source state depends on that.
func (c *Coordinator) setWorkersLocked(workers []string) error {
	if len(workers) == 0 {
		return fmt.Errorf("cluster: coordinator needs at least one worker")
	}
	seen := make(map[string]bool, len(workers))
	for _, w := range workers {
		if w == "" {
			return fmt.Errorf("cluster: empty worker name")
		}
		if seen[w] {
			return fmt.Errorf("cluster: duplicate worker %q", w)
		}
		seen[w] = true
	}
	for _, w := range workers {
		if _, ok := c.sources[w]; !ok {
			if c.nextSrc == 255 {
				return fmt.Errorf("cluster: out of wire source IDs (255 workers ever seen)")
			}
			c.nextSrc++
			c.sources[w] = c.nextSrc
		}
	}
	c.workers = append([]string(nil), workers...)
	return nil
}

// reloadLocked re-reads the spec file and recomputes assignments.
// All-or-nothing: an unreadable or invalid spec leaves the previous
// assignment untouched.
func (c *Coordinator) reloadLocked() error {
	raw, err := os.ReadFile(c.specPath)
	if err != nil {
		return fmt.Errorf("cluster: fleet spec: %w", err)
	}
	spec, err := serve.ParseSpec(raw)
	if err != nil {
		return err
	}
	resolved, err := spec.Resolve()
	if err != nil {
		return err
	}
	if len(resolved) == 0 {
		return fmt.Errorf("cluster: fleet spec: no offices (nothing to shard)")
	}
	for i, ro := range resolved {
		if ro.GID >= 0 {
			return fmt.Errorf("cluster: office %d (%q) carries a gid; the coordinator owns gid assignment", i, ro.Name)
		}
	}
	c.spec = spec
	c.resolved = resolved
	c.reloads++
	return c.recomputeLocked()
}

// recomputeLocked re-shards the current spec over the current workers.
// An office keeps its gid only while both its owner and its resolved
// configuration are unchanged; otherwise it draws a fresh gid from the
// monotonic counter, in spec order — mirroring exactly the fresh fleet
// IDs a single-process reconciler assigns when it applies the same
// change as a remove+add.
func (c *Coordinator) recomputeLocked() error {
	ring, err := NewRing(c.workers, c.replicas)
	if err != nil {
		return err
	}
	next := make(map[string]assignment, len(c.resolved))
	for _, ro := range c.resolved {
		w := ring.Assign(ro.Name)
		a, ok := c.assign[ro.Name]
		if !ok || a.worker != w || a.cfg != ro.Config {
			a = assignment{gid: c.nextGID, worker: w, cfg: ro.Config}
			c.nextGID++
		}
		next[ro.Name] = a
	}
	c.assign = next
	c.gen++
	return nil
}

// ShardSpec is the GET /v1/shard/{worker} response: the worker's
// identity on the wire, the assignment generation it reflects, and its
// gid-stamped sub-spec — a complete serve fleet spec the worker feeds
// straight into serve.Config.SpecSource.
type ShardSpec struct {
	Worker     string          `json:"worker"`
	Source     uint8           `json:"source"`
	Generation uint64          `json:"generation"`
	Offices    int             `json:"offices"`
	Spec       json.RawMessage `json:"spec"`
}

// Shard builds the named worker's current sub-spec.
func (c *Coordinator) Shard(worker string) (*ShardSpec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	src, ok := c.sources[worker]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown worker %q", worker)
	}
	sub := serve.Spec{Defaults: c.spec.Defaults}
	for _, o := range c.spec.Offices {
		a := c.assign[o.Name]
		if a.worker != worker {
			continue
		}
		gid := a.gid
		o.GID = &gid
		sub.Offices = append(sub.Offices, o)
	}
	raw, err := json.Marshal(sub)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal sub-spec: %w", err)
	}
	return &ShardSpec{
		Worker:     worker,
		Source:     src,
		Generation: c.gen,
		Offices:    len(sub.Offices),
		Spec:       raw,
	}, nil
}

// SetWorkers replaces the worker set and re-shards. Offices on
// unchanged arcs keep their worker and gid; moved offices draw fresh
// gids in spec order.
func (c *Coordinator) SetWorkers(workers []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.workers
	if err := c.setWorkersLocked(workers); err != nil {
		return err
	}
	if err := c.recomputeLocked(); err != nil {
		c.workers = prev
		return err
	}
	return nil
}

// Reload re-reads the spec file and re-shards.
func (c *Coordinator) Reload() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reloadLocked()
}

// WorkerAssignment is one worker's row in the /v1/assignments view.
type WorkerAssignment struct {
	Name    string   `json:"name"`
	Source  uint8    `json:"source"`
	Offices []string `json:"offices"`
}

// OfficeAssignment is one office's row in the /v1/assignments view.
type OfficeAssignment struct {
	Name   string `json:"name"`
	GID    int    `json:"gid"`
	Worker string `json:"worker"`
}

// Assignments is the GET /v1/assignments response.
type Assignments struct {
	Generation uint64             `json:"generation"`
	GIDsIssued int                `json:"gids_issued"`
	Workers    []WorkerAssignment `json:"workers"`
	Offices    []OfficeAssignment `json:"offices"`
}

// Assignments snapshots the current placement: workers in join order,
// offices in spec order.
func (c *Coordinator) Assignments() Assignments {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Assignments{Generation: c.gen, GIDsIssued: c.nextGID}
	byWorker := make(map[string][]string, len(c.workers))
	for _, o := range c.spec.Offices {
		a := c.assign[o.Name]
		out.Offices = append(out.Offices, OfficeAssignment{Name: o.Name, GID: a.gid, Worker: a.worker})
		byWorker[a.worker] = append(byWorker[a.worker], o.Name)
	}
	for _, w := range c.workers {
		out.Workers = append(out.Workers, WorkerAssignment{Name: w, Source: c.sources[w], Offices: byWorker[w]})
	}
	return out
}

func (c *Coordinator) handleAssignments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Assignments())
}

func (c *Coordinator) handleShard(w http.ResponseWriter, r *http.Request) {
	ss, err := c.Shard(r.PathValue("worker"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, ss)
}

// workersRequest is the PUT /v1/workers body.
type workersRequest struct {
	Workers []string `json:"workers"`
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	var req workersRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad workers body: %v", err), http.StatusBadRequest)
		return
	}
	if err := c.SetWorkers(req.Workers); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, c.Assignments())
}

func (c *Coordinator) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := c.Reload(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, c.Assignments())
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	gen, workers, offices, gids, reloads := c.gen, len(c.workers), len(c.assign), c.nextGID, c.reloads
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP fadewich_coord_generation Assignment generation (bumped on reload and worker set changes).\n")
	fmt.Fprintf(w, "# TYPE fadewich_coord_generation counter\nfadewich_coord_generation %d\n", gen)
	fmt.Fprintf(w, "# HELP fadewich_coord_workers Current worker count.\n")
	fmt.Fprintf(w, "# TYPE fadewich_coord_workers gauge\nfadewich_coord_workers %d\n", workers)
	fmt.Fprintf(w, "# HELP fadewich_coord_offices Offices in the current spec.\n")
	fmt.Fprintf(w, "# TYPE fadewich_coord_offices gauge\nfadewich_coord_offices %d\n", offices)
	fmt.Fprintf(w, "# HELP fadewich_coord_gids_issued Global office IDs ever issued.\n")
	fmt.Fprintf(w, "# TYPE fadewich_coord_gids_issued counter\nfadewich_coord_gids_issued %d\n", gids)
	fmt.Fprintf(w, "# HELP fadewich_coord_reloads_total Successful spec reloads.\n")
	fmt.Fprintf(w, "# TYPE fadewich_coord_reloads_total counter\nfadewich_coord_reloads_total %d\n", reloads)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// FetchShard retrieves a worker's sub-spec from a coordinator base URL
// (e.g. "http://127.0.0.1:9300"). The zero client uses
// http.DefaultClient.
func FetchShard(client *http.Client, baseURL, worker string) (*ShardSpec, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/v1/shard/" + worker)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch shard: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch shard: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: fetch shard: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var ss ShardSpec
	if err := json.Unmarshal(body, &ss); err != nil {
		return nil, fmt.Errorf("cluster: fetch shard: %w", err)
	}
	return &ss, nil
}
