package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"fadewich/internal/serve"
)

// writeSpec marshals a fleet spec of n paper offices o00..o(n−1) to a
// temp file and returns its path.
func writeSpec(t *testing.T, dir string, n int, mutate func(*serve.Spec)) string {
	t.Helper()
	spec := serve.Spec{
		Defaults: serve.OfficeSpec{Layout: "paper", Sensors: 4, MinTrainingSamples: 3},
	}
	for i := 0; i < n; i++ {
		spec.Offices = append(spec.Offices, serve.OfficeSpec{Name: officeName(i)})
	}
	if mutate != nil {
		mutate(&spec)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func officeName(i int) string {
	return string([]byte{'o', '0' + byte(i/10), '0' + byte(i%10)})
}

// TestCoordinatorInitialAssignment: gids assign 0..n−1 in spec order
// (matching the reference fleet's IDs), placement follows the ring, and
// the per-worker shards partition the spec.
func TestCoordinatorInitialAssignment(t *testing.T) {
	path := writeSpec(t, t.TempDir(), 12, nil)
	c, err := NewCoordinator(CoordinatorConfig{SpecPath: path, Workers: []string{"w1", "w2"}})
	if err != nil {
		t.Fatal(err)
	}
	as := c.Assignments()
	if as.Generation != 1 || as.GIDsIssued != 12 {
		t.Fatalf("generation %d gids %d, want 1 and 12", as.Generation, as.GIDsIssued)
	}
	ring, err := NewRing([]string{"w1", "w2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range as.Offices {
		if o.GID != i {
			t.Errorf("office %s gid %d, want %d (spec order)", o.Name, o.GID, i)
		}
		if want := ring.Assign(o.Name); o.Worker != want {
			t.Errorf("office %s on %s, ring says %s", o.Name, o.Worker, want)
		}
	}
	if len(as.Workers) != 2 || as.Workers[0].Source != 1 || as.Workers[1].Source != 2 {
		t.Fatalf("worker sources %+v, want w1=1 w2=2", as.Workers)
	}
	total := 0
	for _, w := range as.Workers {
		ss, err := c.Shard(w.Name)
		if err != nil {
			t.Fatal(err)
		}
		if ss.Source != w.Source || ss.Offices != len(w.Offices) {
			t.Fatalf("shard %s: %+v vs assignment row %+v", w.Name, ss, w)
		}
		sub, err := serve.ParseSpec(ss.Spec)
		if err != nil {
			t.Fatalf("shard %s sub-spec does not parse: %v", w.Name, err)
		}
		resolved, err := sub.Resolve()
		if err != nil {
			t.Fatalf("shard %s sub-spec does not resolve: %v", w.Name, err)
		}
		for _, ro := range resolved {
			if ro.GID < 0 {
				t.Fatalf("shard %s office %s missing gid", w.Name, ro.Name)
			}
		}
		total += len(resolved)
	}
	if total != 12 {
		t.Fatalf("shards hold %d offices, spec has 12", total)
	}
}

// TestCoordinatorJoinFreshGIDs: adding a worker moves only the offices
// the ring hands it, and exactly the moved offices draw fresh gids, in
// spec order — the mirror of the remove+add sequence the reference
// fleet applies.
func TestCoordinatorJoinFreshGIDs(t *testing.T) {
	path := writeSpec(t, t.TempDir(), 12, nil)
	c, err := NewCoordinator(CoordinatorConfig{SpecPath: path, Workers: []string{"w1", "w2"}})
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]OfficeAssignment{}
	for _, o := range c.Assignments().Offices {
		before[o.Name] = o
	}
	if err := c.SetWorkers([]string{"w1", "w2", "w3"}); err != nil {
		t.Fatal(err)
	}
	as := c.Assignments()
	if as.Generation != 2 {
		t.Fatalf("generation %d after join, want 2", as.Generation)
	}
	nextFresh := 12
	movedAny := false
	for _, o := range as.Offices { // spec order
		prev := before[o.Name]
		if o.Worker == prev.Worker {
			if o.GID != prev.GID {
				t.Errorf("office %s did not move but gid changed %d→%d", o.Name, prev.GID, o.GID)
			}
			continue
		}
		movedAny = true
		if o.Worker != "w3" {
			t.Errorf("office %s moved %s→%s; only moves onto the joiner are allowed", o.Name, prev.Worker, o.Worker)
		}
		if o.GID != nextFresh {
			t.Errorf("moved office %s gid %d, want fresh gid %d (spec order)", o.Name, o.GID, nextFresh)
		}
		nextFresh++
	}
	if !movedAny {
		t.Fatal("no office moved to the joining worker")
	}
	// w3's source is fresh, never a reused one.
	if as.Workers[2].Name != "w3" || as.Workers[2].Source != 3 {
		t.Fatalf("joiner row %+v, want w3 with source 3", as.Workers[2])
	}
}

// TestCoordinatorConfigChangeFreshGID: a config rollout (not a move)
// also draws a fresh gid — the worker restarts the office under a new
// local ID, and the reference fleet does the same.
func TestCoordinatorConfigChangeFreshGID(t *testing.T) {
	dir := t.TempDir()
	path := writeSpec(t, dir, 6, nil)
	c, err := NewCoordinator(CoordinatorConfig{SpecPath: path, Workers: []string{"w1", "w2"}})
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]OfficeAssignment{}
	for _, o := range c.Assignments().Offices {
		before[o.Name] = o
	}
	writeSpec(t, dir, 6, func(s *serve.Spec) {
		s.Offices[2].MinTrainingSamples = 5 // o02 rolls out a new config
	})
	if err := c.Reload(); err != nil {
		t.Fatal(err)
	}
	for _, o := range c.Assignments().Offices {
		prev := before[o.Name]
		if o.Worker != prev.Worker {
			t.Errorf("office %s moved on a pure config reload", o.Name)
		}
		if o.Name == "o02" {
			if o.GID != 6 {
				t.Errorf("o02 gid %d after config change, want fresh gid 6", o.GID)
			}
		} else if o.GID != prev.GID {
			t.Errorf("office %s gid changed %d→%d without a config change", o.Name, prev.GID, o.GID)
		}
	}
}

// TestCoordinatorRejectsGIDInSpec: the coordinator owns gid assignment;
// a spec arriving with gids already stamped is operator error.
func TestCoordinatorRejectsGIDInSpec(t *testing.T) {
	path := writeSpec(t, t.TempDir(), 3, func(s *serve.Spec) {
		gid := 7
		s.Offices[1].GID = &gid
	})
	if _, err := NewCoordinator(CoordinatorConfig{SpecPath: path, Workers: []string{"w1"}}); err == nil {
		t.Fatal("spec with pre-stamped gid accepted")
	}
}

// TestCoordinatorHTTP drives the whole HTTP surface: shard fetch,
// worker set update, reload, assignments and metrics.
func TestCoordinatorHTTP(t *testing.T) {
	dir := t.TempDir()
	path := writeSpec(t, dir, 12, nil)
	c, err := NewCoordinator(CoordinatorConfig{SpecPath: path, Workers: []string{"w1", "w2"}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	defer srv.Close()

	ss, err := FetchShard(srv.Client(), srv.URL, "w1")
	if err != nil {
		t.Fatal(err)
	}
	if ss.Worker != "w1" || ss.Source != 1 || ss.Generation != 1 {
		t.Fatalf("shard %+v", ss)
	}
	if _, err := FetchShard(srv.Client(), srv.URL, "nope"); err == nil {
		t.Fatal("unknown worker shard fetch succeeded")
	}

	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/workers",
		bytes.NewReader([]byte(`{"workers":["w1","w2","w3"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var as Assignments
	if err := json.NewDecoder(resp.Body).Decode(&as); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(as.Workers) != 3 || as.Generation != 2 {
		t.Fatalf("PUT /v1/workers: status %d assignments %+v", resp.StatusCode, as)
	}

	resp, err = srv.Client().Post(srv.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/reload: status %d", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{"fadewich_coord_generation", "fadewich_coord_workers", "fadewich_coord_offices", "fadewich_coord_gids_issued", "fadewich_coord_reloads_total"} {
		if !bytes.Contains(body, []byte(family)) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}
