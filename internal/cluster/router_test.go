package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/wire"
)

// act builds one action for office gid at time t.
func act(gid int, t float64) engine.OfficeAction {
	return engine.OfficeAction{Office: gid, Action: core.Action{Time: t, Type: core.ActionAlertEnter}}
}

// emitted collects the router's output under a lock.
type emitted struct {
	mu      sync.Mutex
	epochs  []uint64
	batches [][]engine.OfficeAction
}

func (e *emitted) onBatch(epoch uint64, batch []engine.OfficeAction) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epochs = append(e.epochs, epoch)
	e.batches = append(e.batches, append([]engine.OfficeAction(nil), batch...))
	return nil
}

func (e *emitted) snapshot() ([]uint64, [][]engine.OfficeAction) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]uint64(nil), e.epochs...), append([][]engine.OfficeAction(nil), e.batches...)
}

// startRouter serves a router on an ephemeral port and returns its
// address plus a channel delivering Serve's result.
func startRouter(t *testing.T, expect int, sink *emitted) (string, chan error) {
	t.Helper()
	r, err := NewRouter(RouterConfig{Expect: expect, OnBatch: sink.onBatch})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Serve(ln) }()
	t.Cleanup(func() { r.Close() })
	return ln.Addr().String(), done
}

// send writes one tagged frame on the connection.
func send(t *testing.T, conn net.Conn, tag wire.Tag, batch []engine.OfficeAction) {
	t.Helper()
	frame, err := wire.AppendTaggedFrame(nil, wire.V1JSONL, tag, batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
}

// finish sends the source's final frame and closes the connection.
func finish(t *testing.T, conn net.Conn, source uint8, epoch uint64) {
	t.Helper()
	send(t, conn, wire.Tag{Source: source, Epoch: epoch, Final: true}, nil)
	conn.Close()
}

func waitServe(t *testing.T, done chan error) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("router: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not complete")
	}
}

// TestRouterMergesEpochs: two sources, interleaved times within each
// epoch; the routed output must be each epoch's runs merged in
// (time, office) order, epochs ascending.
func TestRouterMergesEpochs(t *testing.T) {
	var sink emitted
	addr, done := startRouter(t, 2, &sink)
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	send(t, c1, wire.Tag{Source: 1, Epoch: 1}, []engine.OfficeAction{act(0, 1.0), act(0, 3.0)})
	send(t, c2, wire.Tag{Source: 2, Epoch: 1}, []engine.OfficeAction{act(1, 2.0)})
	send(t, c1, wire.Tag{Source: 1, Epoch: 2}, nil) // empty epoch still aligns
	send(t, c2, wire.Tag{Source: 2, Epoch: 2}, []engine.OfficeAction{act(1, 4.0)})
	finish(t, c1, 1, 3)
	finish(t, c2, 2, 3)
	waitServe(t, done)

	epochs, batches := sink.snapshot()
	if len(epochs) != 2 || epochs[0] != 1 || epochs[1] != 2 {
		t.Fatalf("emitted epochs %v, want [1 2]", epochs)
	}
	want1 := []engine.OfficeAction{act(0, 1.0), act(1, 2.0), act(0, 3.0)}
	if len(batches[0]) != len(want1) {
		t.Fatalf("epoch 1 batch %v", batches[0])
	}
	for i := range want1 {
		if batches[0][i] != want1[i] {
			t.Fatalf("epoch 1 action %d = %+v, want %+v", i, batches[0][i], want1[i])
		}
	}
	if len(batches[1]) != 1 || batches[1][0] != act(1, 4.0) {
		t.Fatalf("epoch 2 batch %v", batches[1])
	}
}

// TestRouterDedupesResends: a redialling sink resends the frame whose
// write failed; when the original did arrive, the router must drop the
// copy.
func TestRouterDedupesResends(t *testing.T) {
	var sink emitted
	addr, done := startRouter(t, 1, &sink)
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	send(t, c1, wire.Tag{Source: 1, Epoch: 1}, []engine.OfficeAction{act(0, 1.0)})
	c1.Close() // sink dies and redials

	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	send(t, c2, wire.Tag{Source: 1, Epoch: 1}, []engine.OfficeAction{act(0, 1.0)}) // the resend
	send(t, c2, wire.Tag{Source: 1, Epoch: 2}, []engine.OfficeAction{act(0, 2.0)})
	finish(t, c2, 1, 3)
	waitServe(t, done)

	epochs, _ := sink.snapshot()
	if len(epochs) != 2 || epochs[0] != 1 || epochs[1] != 2 {
		t.Fatalf("emitted epochs %v, want [1 2] (resend deduped)", epochs)
	}
}

// TestRouterHoldsForUnidentifiedConn: an open connection that has not
// yet sent a tagged frame must hold the watermark — this is the
// join-safety mechanism: a joining worker dials before it is fed, so
// no epoch it participates in can be emitted without it.
func TestRouterHoldsForUnidentifiedConn(t *testing.T) {
	var sink emitted
	addr, done := startRouter(t, 3, &sink)
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	send(t, c1, wire.Tag{Source: 1, Epoch: 1}, []engine.OfficeAction{act(0, 1.0)})
	send(t, c2, wire.Tag{Source: 2, Epoch: 1}, []engine.OfficeAction{act(1, 1.5)})
	// Wait until epoch 1 is out, so the join below is the only hold.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if epochs, _ := sink.snapshot(); len(epochs) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("epoch 1 never emitted")
		}
		time.Sleep(time.Millisecond)
	}

	c3, err := net.Dial("tcp", addr) // the joiner: connected, not yet identified
	if err != nil {
		t.Fatal(err)
	}
	// Give the accept loop time to register the connection; from then on
	// emission must stall even when sources 1 and 2 complete epoch 2.
	time.Sleep(50 * time.Millisecond)
	send(t, c1, wire.Tag{Source: 1, Epoch: 2}, []engine.OfficeAction{act(0, 2.0)})
	send(t, c2, wire.Tag{Source: 2, Epoch: 2}, []engine.OfficeAction{act(1, 2.5)})
	time.Sleep(100 * time.Millisecond)
	if epochs, _ := sink.snapshot(); len(epochs) != 1 {
		t.Fatalf("epoch 2 emitted while the joiner was unidentified (epochs %v)", epochs)
	}
	// The joiner identifies at its join epoch; the merge resumes and
	// epoch 2 includes its run.
	send(t, c3, wire.Tag{Source: 3, Epoch: 2}, []engine.OfficeAction{act(2, 2.2)})
	finish(t, c1, 1, 3)
	finish(t, c2, 2, 3)
	finish(t, c3, 3, 3)
	waitServe(t, done)

	epochs, batches := sink.snapshot()
	if len(epochs) != 2 || epochs[1] != 2 {
		t.Fatalf("emitted epochs %v, want [1 2]", epochs)
	}
	want := []engine.OfficeAction{act(0, 2.0), act(2, 2.2), act(1, 2.5)}
	if len(batches[1]) != len(want) {
		t.Fatalf("epoch 2 batch %v, want %v", batches[1], want)
	}
	for i := range want {
		if batches[1][i] != want[i] {
			t.Fatalf("epoch 2 action %d = %+v, want %+v", i, batches[1][i], want[i])
		}
	}
}

// TestRouterFinalReleasesWatermark: a source that has gone final can
// never lag the merge again, so the remaining sources' epochs flow
// without it.
func TestRouterFinalReleasesWatermark(t *testing.T) {
	var sink emitted
	addr, done := startRouter(t, 2, &sink)
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	send(t, c1, wire.Tag{Source: 1, Epoch: 1}, []engine.OfficeAction{act(0, 1.0)})
	send(t, c2, wire.Tag{Source: 2, Epoch: 1}, []engine.OfficeAction{act(1, 1.1)})
	finish(t, c2, 2, 2) // source 2 drains early
	send(t, c1, wire.Tag{Source: 1, Epoch: 2}, []engine.OfficeAction{act(0, 2.0)})
	send(t, c1, wire.Tag{Source: 1, Epoch: 3}, []engine.OfficeAction{act(0, 3.0)})
	finish(t, c1, 1, 4)
	waitServe(t, done)

	epochs, _ := sink.snapshot()
	if len(epochs) != 3 {
		t.Fatalf("emitted epochs %v, want [1 2 3]", epochs)
	}
}

// TestRouterRejectsEpochGap: the tagged sink guarantees sequential
// delivery, so a skipped epoch means a lost frame — a hard error.
func TestRouterRejectsEpochGap(t *testing.T) {
	var sink emitted
	r, err := NewRouter(RouterConfig{Expect: 1, OnBatch: sink.onBatch})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Serve(ln) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send(t, conn, wire.Tag{Source: 1, Epoch: 1}, []engine.OfficeAction{act(0, 1.0)})
	send(t, conn, wire.Tag{Source: 1, Epoch: 3}, []engine.OfficeAction{act(0, 3.0)})
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "skipped") {
			t.Fatalf("router returned %v, want an epoch-gap error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not fail on the epoch gap")
	}
}

// TestRouterRejectsUntaggedFrames: a plain forwarder pointed at the
// router port must fail loudly, not silently merge unattributed data.
func TestRouterRejectsUntaggedFrames(t *testing.T) {
	var sink emitted
	r, err := NewRouter(RouterConfig{Expect: 1, OnBatch: sink.onBatch})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Serve(ln) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame, err := wire.AppendFrame(nil, wire.V1JSONL, []engine.OfficeAction{act(0, 1.0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "untagged") {
			t.Fatalf("router returned %v, want an untagged-frame error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not fail on the untagged frame")
	}
}
