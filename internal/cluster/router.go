package cluster

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"

	"fadewich/internal/engine"
	"fadewich/internal/wire"
)

// RouterConfig parameterises a Router.
type RouterConfig struct {
	// Expect is the number of distinct worker sources that must deliver
	// a final frame before Serve completes (required, ≥ 1).
	Expect int
	// OnBatch receives each merged epoch's actions, in strictly
	// ascending epoch order, non-empty batches only. It is called from
	// a single goroutine at a time; an error fails the router.
	OnBatch func(epoch uint64, batch []engine.OfficeAction) error
}

// sourceState is the router's per-worker-source bookkeeping. It
// survives reconnects: a worker's TCP sink redials after a write
// failure and resends the failed frame, and lastEpoch is what
// recognises the resend as a duplicate when the original did arrive.
type sourceState struct {
	lastEpoch uint64
	seen      bool
	final     bool
	conn      net.Conn // current connection, nil between reconnects
}

// Router is the cluster fan-in: it accepts worker connections carrying
// epoch-tagged wire frames and re-emits the merged, globally-ordered
// action stream epoch by epoch.
//
// Ordering protocol: each identified source's epochs must arrive
// strictly sequentially (the tagged TCP sink guarantees it; duplicates
// from resends are dropped, gaps are protocol errors). The router
// buffers per-source runs and emits an epoch once the watermark — the
// minimum last-seen epoch across identified, non-final sources — has
// reached it. A connection that has not yet identified itself (no
// tagged frame yet) holds the watermark entirely: that is what makes a
// worker join safe, since a joining worker's sink dials the router
// before the producer feeds it its first epoch, so no epoch it
// participates in can be emitted without it. Within an epoch the
// workers' office sets are disjoint, so merging the per-source runs in
// time order reconstructs exactly the batch a single-process fleet
// would have dispatched.
type Router struct {
	cfg RouterConfig

	mu           sync.Mutex
	sources      map[uint8]*sourceState
	pending      map[uint64]map[uint8][]engine.OfficeAction
	unidentified int
	finals       int
	conns        map[net.Conn]bool
	failErr      error
	doneOnce     sync.Once
	done         chan struct{}

	stats RouterStats
}

// RouterStats is a point-in-time snapshot of the router's counters.
type RouterStats struct {
	// Frames counts accepted tagged frames; Duplicates the resent
	// frames recognised and dropped.
	Frames     uint64
	Duplicates uint64
	// SourcesSeen and SourcesFinal count distinct identified sources
	// and how many have delivered their final frame.
	SourcesSeen  int
	SourcesFinal int
	// EpochsEmitted counts merged epochs handed downstream (epochs
	// whose every run was empty are never buffered and not counted);
	// Batches and Actions count the emitted batches and their total
	// size; PendingEpochs the buffered epochs not yet past the
	// watermark.
	EpochsEmitted uint64
	Batches       uint64
	Actions       uint64
	PendingEpochs int
}

// NewRouter builds a Router. Serve it with Serve.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Expect < 1 {
		return nil, fmt.Errorf("cluster: router expects at least one source")
	}
	return &Router{
		cfg:     cfg,
		sources: make(map[uint8]*sourceState),
		pending: make(map[uint64]map[uint8][]engine.OfficeAction),
		conns:   make(map[net.Conn]bool),
		done:    make(chan struct{}),
	}, nil
}

// Stats snapshots the router's counters.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.SourcesSeen = len(r.sources)
	st.SourcesFinal = r.finals
	st.PendingEpochs = len(r.pending)
	return st
}

// Serve accepts worker connections on ln until every expected source
// has delivered its final frame (then the remaining buffered epochs are
// flushed and Serve returns nil), or a protocol violation or OnBatch
// error fails the router. Serve owns ln and closes it.
func (r *Router) Serve(ln net.Listener) error {
	go func() {
		<-r.done
		ln.Close()
	}()
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-r.done:
			default:
				r.fail(fmt.Errorf("cluster: router accept: %w", err))
			}
			break
		}
		r.mu.Lock()
		if r.failErr != nil || r.completeLocked() {
			r.mu.Unlock()
			conn.Close()
			continue
		}
		r.conns[conn] = true
		r.unidentified++
		r.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.handleConn(conn)
		}()
	}
	wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failErr
}

// Close aborts the router (a stuck or cancelled run); a completed
// Serve is unaffected.
func (r *Router) Close() error {
	r.fail(nil)
	return nil
}

// fail records the first error, wakes Serve and unblocks every
// connection reader. Errors arriving after the run already completed
// (e.g. readers woken by the completion close) are discarded.
func (r *Router) fail(err error) {
	r.mu.Lock()
	select {
	case <-r.done:
	default:
		if r.failErr == nil && err != nil {
			r.failErr = err
		}
	}
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	r.doneOnce.Do(func() { close(r.done) })
	for _, c := range conns {
		c.Close()
	}
}

// handleConn decodes one worker connection's frames into the shared
// merge state.
func (r *Router) handleConn(conn net.Conn) {
	defer conn.Close()
	var src uint8 // 0 until the first tagged frame identifies the connection
	dec := wire.NewDecoder(conn)
	for {
		acts, err := dec.Decode()
		if err != nil {
			// Only data-level damage fails the router. EOF is the normal
			// end of a connection; a torn tail or a transport read error
			// is the worker's sink dying or redialling mid-frame — the
			// frame that was cut off is resent on the next connection,
			// so the remnant is dropped, not an error.
			if errors.Is(err, wire.ErrCorrupt) || errors.Is(err, wire.ErrVersion) {
				r.fail(fmt.Errorf("cluster: router: decode from %s: %w", conn.RemoteAddr(), err))
			}
			break
		}
		tag, tagged := dec.Tag()
		if !tagged {
			r.fail(fmt.Errorf("cluster: router: untagged frame from %s (is a plain forwarder pointed at the router port?)", conn.RemoteAddr()))
			break
		}
		if err := r.onFrame(conn, &src, tag, acts); err != nil {
			r.fail(err)
			break
		}
	}
	r.connClosed(conn, src)
}

// onFrame applies one tagged frame: identify the connection if needed,
// dedupe resends, record the epoch run, then advance the watermark.
func (r *Router) onFrame(conn net.Conn, src *uint8, tag wire.Tag, acts []engine.OfficeAction) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failErr != nil {
		return nil
	}
	if *src == 0 {
		*src = tag.Source
		st := r.sources[tag.Source]
		if st == nil {
			st = &sourceState{}
			r.sources[tag.Source] = st
		}
		// A lingering previous connection for this source is a redial
		// race (the sink has already abandoned it); the new connection
		// supersedes it.
		st.conn = conn
		r.unidentified--
	} else if *src != tag.Source {
		return fmt.Errorf("cluster: router: source changed mid-connection (%d then %d)", *src, tag.Source)
	}
	st := r.sources[*src]
	r.stats.Frames++
	if tag.Final {
		if st.final {
			r.stats.Duplicates++ // resent final after a redial
			return nil
		}
		st.final = true
		r.finals++
		return r.advanceLocked()
	}
	if st.seen && tag.Epoch <= st.lastEpoch {
		// A duplicate: the sink resent a frame whose write failed after
		// the original arrived, or a superseded connection's reader is
		// draining late. Either way the epoch is already recorded.
		r.stats.Duplicates++
		return nil
	}
	if st.final {
		return fmt.Errorf("cluster: router: source %d sent epoch %d after its final frame", *src, tag.Epoch)
	}
	if st.seen && tag.Epoch != st.lastEpoch+1 {
		return fmt.Errorf("cluster: router: source %d skipped from epoch %d to %d (lost frame)", *src, st.lastEpoch, tag.Epoch)
	}
	st.lastEpoch = tag.Epoch
	st.seen = true
	if len(acts) > 0 {
		runs := r.pending[tag.Epoch]
		if runs == nil {
			runs = make(map[uint8][]engine.OfficeAction)
			r.pending[tag.Epoch] = runs
		}
		runs[*src] = acts
	}
	return r.advanceLocked()
}

// connClosed retires a connection; an identified source keeps its
// epoch state for the reconnect.
func (r *Router) connClosed(conn net.Conn, src uint8) {
	r.mu.Lock()
	if r.conns[conn] {
		delete(r.conns, conn)
		if src == 0 {
			r.unidentified--
		} else if st := r.sources[src]; st != nil && st.conn == conn {
			st.conn = nil
		}
		// An unidentified connection's departure can release the
		// watermark, and the last final source's hangup can complete
		// the run.
		if err := r.advanceLocked(); err != nil {
			r.mu.Unlock()
			r.fail(err)
			return
		}
	}
	r.mu.Unlock()
}

// completeLocked reports whether the run is finished: every expected
// source went final and nothing can arrive any more.
func (r *Router) completeLocked() bool {
	return r.finals >= r.cfg.Expect && r.unidentified == 0 && r.finals == len(r.sources)
}

// advanceLocked recomputes the watermark and emits every buffered epoch
// at or below it, in ascending order. Called with r.mu held.
func (r *Router) advanceLocked() error {
	if r.unidentified > 0 || len(r.sources) == 0 {
		return nil // a connection we cannot yet attribute holds everything
	}
	watermark := uint64(math.MaxUint64)
	for _, st := range r.sources {
		if st.final {
			continue // a finished source can never lag the merge again
		}
		if !st.seen {
			return nil
		}
		if st.lastEpoch < watermark {
			watermark = st.lastEpoch
		}
	}
	epochs := make([]uint64, 0, len(r.pending))
	for e := range r.pending {
		if e <= watermark {
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, e := range epochs {
		bySrc := r.pending[e]
		delete(r.pending, e)
		srcs := make([]int, 0, len(bySrc))
		for s := range bySrc {
			srcs = append(srcs, int(s))
		}
		sort.Ints(srcs)
		runs := make([][]engine.OfficeAction, 0, len(srcs))
		for _, s := range srcs {
			runs = append(runs, bySrc[uint8(s)])
		}
		merged := engine.MergeRuns(runs, 0)
		r.stats.EpochsEmitted++
		if len(merged) > 0 {
			r.stats.Batches++
			r.stats.Actions += uint64(len(merged))
			if r.cfg.OnBatch != nil {
				if err := r.cfg.OnBatch(e, merged); err != nil {
					return fmt.Errorf("cluster: router: emit epoch %d: %w", e, err)
				}
			}
		}
	}
	if r.completeLocked() {
		r.doneOnce.Do(func() { close(r.done) })
		// Unblock any reader whose worker left its connection open after
		// the final frame.
		for c := range r.conns {
			c.Close()
		}
	}
	return nil
}
