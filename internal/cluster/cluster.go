// Package cluster scales the serve stack horizontally over the wire
// layer: a coordinator consistent-hashes the fleet spec's offices onto
// named workers and serves each worker its gid-stamped sub-spec; each
// worker runs an ordinary serve.Server over its shard, forwarding
// epoch-tagged wire frames; and a stream router k-way merges the worker
// streams back into one globally-ordered action stream.
//
// The pieces compose into the topology DEPLOYMENT.md documents:
//
//	feeder ──ticks──▶ worker 1 ─┐
//	feeder ──ticks──▶ worker 2 ─┼─tagged frames─▶ router ─▶ merged stream
//	feeder ──ticks──▶ worker 3 ─┘
//	            ▲ sub-specs
//	       coordinator
//
// Three invariants carry the whole design:
//
//   - Stable sharding. Office names are placed on a consistent-hash
//     ring (Ring), so a worker joining or leaving moves only the
//     offices that hash to the changed arcs — every other office stays
//     where it is, keeping its learned state.
//
//   - One global ID space. Local fleet IDs are per-worker and collide
//     across workers, so the coordinator stamps every office with a
//     cluster-wide gid, assigned by a monotonic counter in spec order
//     and never reused; an office that moves workers (or changes
//     config) gets a fresh gid, exactly mirroring the remove+add a
//     single-process reconciler would apply. That makes the merged
//     stream byte-identical to a single reference fleet running the
//     same spec — the property the cluster e2e test enforces.
//
//   - Epoch-aligned merging. A single producer drives every dispatch
//     with POST /v1/ticks?flush=1&epoch=K against every worker, so
//     each worker emits exactly one tagged frame per epoch — empty
//     epochs included. The router buffers per-source epochs, advances
//     a watermark (the minimum epoch across identified sources), and
//     emits each epoch's per-worker runs merged in time order. Within
//     an epoch the workers' office sets are disjoint, so the merge
//     reconstructs the reference fleet's batch exactly.
package cluster
