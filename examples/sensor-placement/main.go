// Sensor placement: how movement-detection quality scales with the number
// of deployed sensors, and how FADEWICH behaves in offices other than the
// paper's (its stated future-work question).
//
//	go run ./examples/sensor-placement
package main

import (
	"fmt"
	"log"

	"fadewich"
)

func main() {
	// Part 1: the paper office — F-measure versus sensor count at the
	// operating point t∆ = 4.5 s.
	fmt.Println("paper office (6m x 3m, 3 workstations):")
	sweep(fadewich.PaperOffice(), 5, 42)

	// Part 2: a different room each way — smaller and larger offices,
	// exercising the generic greedy sensor-ordering instead of the
	// hand-tuned paper order.
	fmt.Println("\nsmall office (4m x 3m, 2 workstations):")
	sweep(fadewich.SmallOffice(), 3, 43)

	fmt.Println("\nwide office (8m x 4m, 4 workstations):")
	sweep(fadewich.WideOffice(), 3, 44)
}

func sweep(layout *fadewich.Layout, days int, seed uint64) {
	ds, err := fadewich.GenerateDataset(fadewich.SimConfig{
		Days:   days,
		Seed:   seed,
		Layout: layout,
	})
	if err != nil {
		log.Fatal(err)
	}
	counts := make([]int, 0, layout.NumSensors()-2)
	for n := 3; n <= layout.NumSensors(); n++ {
		counts = append(counts, n)
	}
	h, err := fadewich.NewHarness(ds, fadewich.EvalOptions{Seed: seed, SensorCounts: counts})
	if err != nil {
		log.Fatal(err)
	}
	rows, err := h.Table3(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-8s %-10s %-6s %-6s %-6s\n", "sensors", "F-measure", "TP", "FP", "FN")
	for _, r := range rows {
		fmt.Printf("  %-8d %-10.3f %-6d %-6d %-6d\n",
			r.Sensors, r.Detection.FMeasure(), r.Detection.TP, r.Detection.FP, r.Detection.FN)
	}
}
