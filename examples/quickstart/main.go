// Quickstart: the smallest end-to-end FADEWICH run.
//
// It simulates one short office day, trains the streaming System on the
// first hours, then watches it deauthenticate a departing user in the
// final hour.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fadewich"
)

func main() {
	// 1. Simulate a 2-day office: three users, nine wall sensors, one
	//    door (the paper's Fig 6 layout is the default).
	ds, err := fadewich.GenerateDataset(fadewich.SimConfig{Days: 2, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	layout := ds.Layout
	fmt.Printf("office %q: %d workstations, %d sensors, %d RSSI streams\n",
		layout.Name, layout.NumWorkstations(), layout.NumSensors(), ds.NumStreams())

	// 2. Build the streaming System over all sensors.
	sys, err := fadewich.NewSystem(fadewich.SystemConfig{
		DT:           ds.Days[0].DT,
		Streams:      ds.NumStreams(),
		Workstations: layout.NumWorkstations(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Training day: replay day 0, letting the System auto-label
	//    variation windows from keyboard idle times.
	h, err := fadewich.NewHarness(ds, fadewich.EvalOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	inputs := h.Inputs()
	replayDay(sys, ds.Days[0], inputs[0], nil)
	if err := sys.FinishTraining(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d auto-labelled samples\n\n", sys.TrainingSamples())

	// 4. Online day: print deauthentications as they happen.
	base := sys.Now()
	replayDay(sys, ds.Days[1], inputs[1], func(a fadewich.Action) {
		if a.Type == fadewich.ActionDeauthenticate {
			fmt.Printf("%8.1fs  deauthenticate w%d (%s)\n", a.Time-base, a.Workstation+1, a.Cause)
		}
	})
}

// replayDay feeds one simulated day into the System.
func replayDay(sys *fadewich.System, trace *fadewich.Trace, inputs [][]float64, onAction func(fadewich.Action)) {
	cursor := make([]int, len(inputs))
	rssi := make([]float64, len(trace.Streams))
	base := sys.Now()
	for i := 0; i < trace.Ticks; i++ {
		t := base + float64(i+1)*trace.DT
		for ws := range inputs {
			for cursor[ws] < len(inputs[ws]) && base+inputs[ws][cursor[ws]] <= t {
				sys.NotifyInput(ws)
				cursor[ws]++
			}
		}
		for k := range trace.Streams {
			rssi[k] = float64(trace.Streams[k][i])
		}
		for _, a := range sys.Tick(rssi) {
			if onAction != nil {
				onAction(a)
			}
		}
	}
}
