// Lunchtime attack: measures the adversary's window of opportunity under
// FADEWICH versus the idle time-out baseline.
//
// The paper's two adversaries both strike when a victim leaves an
// authenticated workstation: the Co-worker (already inside the office)
// can reach the workstation the moment the victim walks out the door; the
// Insider (outside the office) needs ≈4 more seconds. Under a 300-second
// time-out either adversary wins every time; this example shows FADEWICH
// closing the window to (near) zero as sensors are added.
//
//	go run ./examples/lunchtime-attack
package main

import (
	"fmt"
	"log"

	"fadewich"
	"fadewich/internal/eval"
)

func main() {
	ds, err := fadewich.GenerateDataset(fadewich.SimConfig{Days: 5, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	h, err := fadewich.NewHarness(ds, fadewich.EvalOptions{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	rows, err := h.Fig10(eval.AdversaryDelays{InsiderSec: 4, CoworkerSec: 0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("attack opportunities per policy (lower is better):")
	fmt.Printf("%-10s %12s %12s\n", "policy", "insider", "co-worker")
	for _, r := range rows {
		fmt.Printf("%-10s %11.1f%% %11.1f%%\n", r.Policy, r.InsiderPct, r.CoworkerPct)
	}

	// Zoom in: how long does each victim's workstation stay exposed at
	// full deployment?
	outcomes, err := h.DepartureOutcomes(9, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	var worst eval.DepartureOutcome
	var sum float64
	for _, o := range outcomes {
		sum += o.Elapsed
		if o.Elapsed > worst.Elapsed {
			worst = o
		}
	}
	fmt.Printf("\nwith 9 sensors: mean exposure %.1f s over %d departures; worst case %.1f s (case %s)\n",
		sum/float64(len(outcomes)), len(outcomes), worst.Elapsed, worst.Case)
	fmt.Println("under the 300 s time-out every departure leaves a 300 s window.")
}
