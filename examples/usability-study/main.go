// Usability study: what FADEWICH costs the users who stay at their desks.
//
// Every variation window puts idle workstations into alert state; a user
// who pauses typing at the wrong moment sees a screensaver (3 s to
// cancel), and a misclassified window can deauthenticate an occupied
// workstation outright (13 s to log back in). Following the paper's
// Section VII-D this example redraws the Mikkelsen et al. input model
// many times and reports the expected per-day cost, next to the security
// gain from Fig 13's vulnerable-time metric.
//
//	go run ./examples/usability-study
package main

import (
	"fmt"
	"log"

	"fadewich"
)

func main() {
	ds, err := fadewich.GenerateDataset(fadewich.SimConfig{Days: 5, Seed: 4242})
	if err != nil {
		log.Fatal(err)
	}
	h, err := fadewich.NewHarness(ds, fadewich.EvalOptions{Seed: 4242})
	if err != nil {
		log.Fatal(err)
	}

	const draws = 50
	rows, err := h.Table4(draws)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("usability cost per day (%d input draws):\n", draws)
	fmt.Printf("%-8s %-18s %-16s %-10s\n", "sensors", "screensavers/day", "deauths/day", "cost (s)")
	for _, r := range rows {
		fmt.Printf("%-8d %7.2f (±%.2f)    %7.3f (±%.3f) %8.1f\n",
			r.Sensors, r.ScreensaversPerDay, r.ScreensaversStd,
			r.DeauthsPerDay, r.DeauthsStd, r.CostPerDay)
	}

	trade, err := h.Fig13(draws / 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsecurity/usability trade-off over the whole period:")
	fmt.Printf("%-10s %-18s %-14s\n", "policy", "vulnerable (min)", "cost (min)")
	for _, r := range trade {
		fmt.Printf("%-10s %15.1f %13.1f\n", r.Policy, r.VulnerableMin, r.TotalCostMin)
	}
	fmt.Println("\nreading: a handful of sensors buys a ~50x cut in exposure for a")
	fmt.Println("per-user cost of seconds per day — the paper's Fig 13 conclusion.")
}
