package fadewich_test

import (
	"testing"

	"fadewich"
	"fadewich/internal/eval"
)

// TestPipelineDeterminism guards the reproducibility contract stated in
// EXPERIMENTS.md: the same seed must regenerate identical experiment
// results end to end (simulation → detection → matching → classification).
func TestPipelineDeterminism(t *testing.T) {
	run := func() []eval.Table3Row {
		cfg := fadewich.SimConfig{Days: 1, Seed: 2024}
		cfg.Agent.DaySeconds = 3600
		cfg.Agent.MorningJitterSec = 120
		cfg.Agent.DeparturesPerDay = 3
		cfg.Agent.OutsideMeanSec = 120
		ds, err := fadewich.GenerateDataset(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := fadewich.NewHarness(ds, fadewich.EvalOptions{Seed: 2024})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := h.Table3(0)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSecurityHeadline asserts the paper's core security claim on a
// freshly simulated dataset: with the full deployment, no insider attack
// opportunity remains and the mean deauthentication delay stays in the
// single-digit seconds.
func TestSecurityHeadline(t *testing.T) {
	cfg := fadewich.SimConfig{Days: 2, Seed: 31415}
	cfg.Agent.DaySeconds = 2 * 3600
	cfg.Agent.MorningJitterSec = 120
	cfg.Agent.DeparturesPerDay = 4
	cfg.Agent.OutsideMeanSec = 150
	ds, err := fadewich.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fadewich.NewHarness(ds, fadewich.EvalOptions{Seed: 31415})
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := h.DepartureOutcomes(9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) == 0 {
		t.Skip("no departures generated")
	}
	var sum float64
	caseC := 0
	for _, o := range outcomes {
		sum += o.Elapsed
		if o.Case == eval.CaseC {
			caseC++
		}
	}
	if caseC > 0 {
		t.Fatalf("%d departures fell through to the time-out at 9 sensors", caseC)
	}
	if mean := sum / float64(len(outcomes)); mean > 9 {
		t.Fatalf("mean deauthentication delay %v s at 9 sensors", mean)
	}
	// Insider opportunities must be zero.
	rows, err := h.Fig10(eval.AdversaryDelays{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Sensors == 9 && r.InsiderPct != 0 {
			t.Fatalf("insider opportunities %v%% at 9 sensors", r.InsiderPct)
		}
	}
}

// TestUsabilityHeadline asserts the paper's usability claim: the expected
// per-day cost stays bounded (the paper reports ≤ 37 s/day; our denser
// input model roughly doubles that, still "seconds per day").
func TestUsabilityHeadline(t *testing.T) {
	cfg := fadewich.SimConfig{Days: 1, Seed: 2718}
	cfg.Agent.DaySeconds = 2 * 3600
	cfg.Agent.MorningJitterSec = 120
	cfg.Agent.DeparturesPerDay = 4
	cfg.Agent.OutsideMeanSec = 150
	ds, err := fadewich.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fadewich.NewHarness(ds, fadewich.EvalOptions{Seed: 2718})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := h.Table4(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// A day has 28'800 s; anything above a couple of minutes would
		// mean the system is hostile to its users.
		if r.CostPerDay > 150 {
			t.Fatalf("cost %v s/day at %d sensors", r.CostPerDay, r.Sensors)
		}
	}
}
