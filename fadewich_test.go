package fadewich_test

import (
	"testing"

	"fadewich"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does: simulate, evaluate, and run the streaming system.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := fadewich.SimConfig{Days: 1, Seed: 123}
	cfg.Agent.DaySeconds = 3600
	cfg.Agent.MorningJitterSec = 120
	cfg.Agent.DeparturesPerDay = 3
	cfg.Agent.OutsideMeanSec = 120
	ds, err := fadewich.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumStreams() != 72 {
		t.Fatalf("streams %d", ds.NumStreams())
	}

	h, err := fadewich.NewHarness(ds, fadewich.EvalOptions{Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := h.Table3(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Table III rows")
	}

	sys, err := fadewich.NewSystem(fadewich.SystemConfig{
		DT:           ds.Days[0].DT,
		Streams:      ds.NumStreams(),
		Workstations: ds.Layout.NumWorkstations(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Phase() != fadewich.PhaseTraining {
		t.Fatal("new system not in training phase")
	}
	// Push a handful of quiet ticks through the public surface.
	rssi := make([]float64, ds.NumStreams())
	for i := 0; i < 10; i++ {
		for k := range ds.Days[0].Streams {
			rssi[k] = float64(ds.Days[0].Streams[k][i])
		}
		sys.Tick(rssi)
	}
	sys.NotifyInput(0)
	if !sys.Authenticated(0) {
		t.Fatal("NotifyInput did not authenticate through the facade")
	}
}

func TestOfficePresets(t *testing.T) {
	if fadewich.PaperOffice().NumSensors() != 9 {
		t.Fatal("paper office sensors")
	}
	if fadewich.SmallOffice().NumWorkstations() != 2 {
		t.Fatal("small office workstations")
	}
	if fadewich.WideOffice().NumWorkstations() != 4 {
		t.Fatal("wide office workstations")
	}
}

func TestDefaultParams(t *testing.T) {
	p := fadewich.DefaultControlParams()
	if p.TDeltaSec != 4.5 || p.TIDSec != 5 || p.TSSSec != 3 || p.TimeoutSec != 300 {
		t.Fatalf("paper constants wrong: %+v", p)
	}
	opt := fadewich.DefaultEvalOptions()
	if len(opt.SensorCounts) != 7 {
		t.Fatalf("sensor counts %v", opt.SensorCounts)
	}
}
