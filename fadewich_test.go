package fadewich_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fadewich"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does: simulate, evaluate, and run the streaming system.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := fadewich.SimConfig{Days: 1, Seed: 123}
	cfg.Agent.DaySeconds = 3600
	cfg.Agent.MorningJitterSec = 120
	cfg.Agent.DeparturesPerDay = 3
	cfg.Agent.OutsideMeanSec = 120
	ds, err := fadewich.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumStreams() != 72 {
		t.Fatalf("streams %d", ds.NumStreams())
	}

	h, err := fadewich.NewHarness(ds, fadewich.EvalOptions{Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := h.Table3(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Table III rows")
	}

	sys, err := fadewich.NewSystem(fadewich.SystemConfig{
		DT:           ds.Days[0].DT,
		Streams:      ds.NumStreams(),
		Workstations: ds.Layout.NumWorkstations(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Phase() != fadewich.PhaseTraining {
		t.Fatal("new system not in training phase")
	}
	// Push a handful of quiet ticks through the public surface.
	rssi := make([]float64, ds.NumStreams())
	for i := 0; i < 10; i++ {
		for k := range ds.Days[0].Streams {
			rssi[k] = float64(ds.Days[0].Streams[k][i])
		}
		sys.Tick(rssi)
	}
	sys.NotifyInput(0)
	if !sys.Authenticated(0) {
		t.Fatal("NotifyInput did not authenticate through the facade")
	}
}

// TestFacadeStreaming exercises the streaming exports: a small fleet
// behind an Ingestor, its merged action stream fanned out to a ring and a
// JSONL log sink.
func TestFacadeStreaming(t *testing.T) {
	fleet, err := fadewich.NewFleet(fadewich.FleetConfig{
		Offices: 2,
		System: fadewich.SystemConfig{
			Streams:      2,
			Workstations: 1,
			Params:       fadewich.ControlParams{TimeoutSec: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ring := fadewich.NewRingSink(256)
	logPath := filepath.Join(t.TempDir(), "actions.jsonl")
	logSink, err := fadewich.NewLogSink(logPath)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := fadewich.NewIngestor(fleet, fadewich.IngestorConfig{
		Queue:  64,
		OnFull: fadewich.OnFullBlock,
		Sink:   fadewich.NewMultiSink(ring, logSink),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A login then enough quiet ticks for the 5 s timeout backstop to
	// deauthenticate both offices.
	for o := 0; o < fleet.Offices(); o++ {
		if err := ing.PushInput(o, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		for o := 0; o < fleet.Offices(); o++ {
			if err := ing.Push(o, []float64{-60, -58}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	acts := ring.Actions()
	deauths := 0
	for _, a := range acts {
		if a.Action.Type == fadewich.ActionDeauthenticate {
			deauths++
		}
	}
	if deauths != 2 {
		t.Fatalf("%d deauthentications in the sink stream, want one per office", deauths)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(data, []byte("\n")); lines != len(acts) {
		t.Fatalf("log sink has %d lines, ring has %d actions", lines, len(acts))
	}
	st := ing.Stats()
	if st.Dropped != 0 || st.Offices[0].Dispatched != 60 {
		t.Fatalf("ingestor stats: %+v", st)
	}
}

func TestOfficePresets(t *testing.T) {
	if fadewich.PaperOffice().NumSensors() != 9 {
		t.Fatal("paper office sensors")
	}
	if fadewich.SmallOffice().NumWorkstations() != 2 {
		t.Fatal("small office workstations")
	}
	if fadewich.WideOffice().NumWorkstations() != 4 {
		t.Fatal("wide office workstations")
	}
}

func TestDefaultParams(t *testing.T) {
	p := fadewich.DefaultControlParams()
	if p.TDeltaSec != 4.5 || p.TIDSec != 5 || p.TSSSec != 3 || p.TimeoutSec != 300 {
		t.Fatalf("paper constants wrong: %+v", p)
	}
	opt := fadewich.DefaultEvalOptions()
	if len(opt.SensorCounts) != 7 {
		t.Fatalf("sensor counts %v", opt.SensorCounts)
	}
}
