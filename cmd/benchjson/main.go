// Command benchjson converts `go test -bench` output into a compact JSON
// snapshot and gates benchmark regressions against a committed baseline.
// It is the core of the CI bench job: every run on main uploads a
// BENCH_<date>.json artifact, and the job fails when any benchmark's
// median ns/op exceeds the baseline by more than the tolerance.
//
// Usage:
//
//	go test -bench . -benchmem -count=5 ./... | benchjson -out BENCH_2026-07-29.json
//	benchjson -in bench.txt -out BENCH.json -baseline BENCH_baseline.json -tolerance 0.15
//	benchjson -to-bench -in BENCH_baseline.json -out baseline.txt
//
// With -count=N the N samples of each benchmark are collapsed to their
// median, which is robust against the occasional scheduler hiccup that
// would make a min or mean gate flaky. Custom metrics (ticks/sec,
// fmeasure, ...) are carried through informationally; only ns/op gates.
//
// With -to-bench the input is a snapshot JSON instead of bench output:
// the medians are rendered back into `go test -bench` text, one line per
// benchmark, so tools that consume that format — benchstat in the CI
// job's old-vs-new comparison — can diff a run against the committed
// baseline.
//
// Exit status: 0 on success, 1 on parse/IO errors or when the regression
// gate trips.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark's aggregated result.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Runs is the number of samples aggregated (the -count).
	Runs int `json:"runs"`
	// NsPerOp is the median ns/op across the samples.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem medians (omitted when
	// the run had no -benchmem).
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds medians of any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the BENCH_<date>.json schema.
type Snapshot struct {
	Schema    int    `json:"schema"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Provenance records where the numbers came from ("ci" for the
	// pinned CI runner, "local" otherwise). The regression gate only
	// fails hard when baseline and current provenance match — absolute
	// timings are not comparable across hardware generations, so a
	// local seed gating a CI run (or vice versa) reports advisorily
	// instead of failing. See docs/CI.md.
	Provenance string      `json:"provenance"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Regression is one benchmark that got slower than the gate allows.
type Regression struct {
	Name            string
	BaselineNsPerOp float64
	CurrentNsPerOp  float64
	Ratio           float64
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON snapshot to write (default stdout)")
	baseline := flag.String("baseline", "", "baseline snapshot to gate against (empty = no gate)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed ns/op slowdown fraction before the gate trips")
	date := flag.String("date", "", "date stamped into the snapshot (default today, UTC)")
	provenance := flag.String("provenance", "local", "where this run's numbers come from (ci|local); the gate only fails hard when it matches the baseline's")
	toBench := flag.Bool("to-bench", false, "treat -in as a snapshot JSON and render it back into `go test -bench` text (for benchstat)")
	flag.Parse()

	var err error
	if *toBench {
		err = runToBench(*in, *out)
	} else {
		err = run(*in, *out, *baseline, *tolerance, *date, *provenance)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// runToBench renders a snapshot JSON back into bench-output text.
func runToBench(in, out string) error {
	var data []byte
	var err error
	if in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("snapshot %s: %w", in, err)
	}
	text := ToBench(snap.Benchmarks)
	if out == "" {
		_, err = os.Stdout.WriteString(text)
		return err
	}
	return os.WriteFile(out, []byte(text), 0o644)
}

// ToBench renders benchmarks as `go test -bench` output lines, one line
// per benchmark carrying its medians. The iteration count is rendered as
// 1 — benchstat only reads the (value, unit) pairs.
func ToBench(benches []Benchmark) string {
	var sb strings.Builder
	for _, b := range benches {
		fmt.Fprintf(&sb, "%s 1 %v ns/op", b.Name, b.NsPerOp)
		if b.BytesPerOp != nil {
			fmt.Fprintf(&sb, " %v B/op", *b.BytesPerOp)
		}
		if b.AllocsPerOp != nil {
			fmt.Fprintf(&sb, " %v allocs/op", *b.AllocsPerOp)
		}
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			fmt.Fprintf(&sb, " %v %s", b.Metrics[unit], unit)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func run(in, out, baseline string, tolerance float64, date, provenance string) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	benches, err := Parse(r)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	snap := Snapshot{
		Schema:     1,
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Provenance: provenance,
		Benchmarks: benches,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}

	if baseline == "" {
		return nil
	}
	baseData, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Snapshot
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baseline, err)
	}
	regs, missing := Compare(base.Benchmarks, benches, tolerance)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchjson: warning: baseline benchmark %q missing from this run\n", name)
	}
	// Absolute timings only gate within one hardware environment: a
	// local seed cannot fail a CI run (or vice versa) — the comparison
	// is reported, but advisorily. The gate arms itself once the
	// baseline is refreshed from a run of the same provenance.
	enforce := base.Provenance == provenance
	if len(regs) > 0 {
		for _, reg := range regs {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f ns/op -> %.0f ns/op (%.0f%% slower, tolerance %.0f%%)\n",
				reg.Name, reg.BaselineNsPerOp, reg.CurrentNsPerOp, (reg.Ratio-1)*100, tolerance*100)
		}
		if !enforce {
			fmt.Fprintf(os.Stderr, "benchjson: advisory only: baseline provenance %q != this run's %q (refresh the baseline from a %q run to arm the gate)\n",
				base.Provenance, provenance, provenance)
			return nil
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%% versus %s", len(regs), tolerance*100, baseline)
	}
	mode := "gated"
	if !enforce {
		mode = "advisory (provenance mismatch)"
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %.0f%% of %s [%s]\n", len(benches), tolerance*100, baseline, mode)
	return nil
}

// Parse reads `go test -bench` output and aggregates repeated samples of
// each benchmark (from -count=N) into their medians. The -GOMAXPROCS
// name suffix is stripped so snapshots compare across machines with
// different core counts — but only when it is genuinely the procs
// suffix: go test appends it to *every* benchmark (and only when
// GOMAXPROCS != 1), so a trailing "-N" is stripped only if all parsed
// names end in the same "-N". A sub-benchmark whose own name ends in a
// number (offices-64) on a single-CPU machine is therefore left intact.
func Parse(r io.Reader) ([]Benchmark, error) {
	type sample struct {
		name  string
		pairs [][2]string // (value, unit)
	}
	var lines []sample

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		s := sample{name: fields[0]}
		for i := 2; i+1 < len(fields); i += 2 {
			s.pairs = append(s.pairs, [2]string{fields[i], fields[i+1]})
		}
		lines = append(lines, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	names := make([]string, len(lines))
	for i, ln := range lines {
		names[i] = ln.name
	}
	suffix := commonProcsSuffix(names)

	type samples struct {
		ns, bytes, allocs []float64
		metrics           map[string][]float64
	}
	byName := make(map[string]*samples)
	var order []string
	for _, ln := range lines {
		name := strings.TrimSuffix(ln.name, suffix)
		s := byName[name]
		if s == nil {
			s = &samples{metrics: make(map[string][]float64)}
			byName[name] = s
			order = append(order, name)
		}
		for _, pair := range ln.pairs {
			val, err := strconv.ParseFloat(pair[0], 64)
			if err != nil {
				continue
			}
			switch pair[1] {
			case "ns/op":
				s.ns = append(s.ns, val)
			case "B/op":
				s.bytes = append(s.bytes, val)
			case "allocs/op":
				s.allocs = append(s.allocs, val)
			default:
				s.metrics[pair[1]] = append(s.metrics[pair[1]], val)
			}
		}
	}

	var out []Benchmark
	for _, name := range order {
		s := byName[name]
		if len(s.ns) == 0 {
			continue
		}
		b := Benchmark{Name: name, Runs: len(s.ns), NsPerOp: median(s.ns)}
		if len(s.bytes) > 0 {
			v := median(s.bytes)
			b.BytesPerOp = &v
		}
		if len(s.allocs) > 0 {
			v := median(s.allocs)
			b.AllocsPerOp = &v
		}
		if len(s.metrics) > 0 {
			b.Metrics = make(map[string]float64, len(s.metrics))
			for unit, vals := range s.metrics {
				b.Metrics[unit] = median(vals)
			}
		}
		out = append(out, b)
	}
	return out, nil
}

// commonProcsSuffix returns the "-N" suffix shared by every benchmark
// name (the GOMAXPROCS suffix go test appends to all benchmarks when
// procs != 1), or "" when the names do not all share one.
func commonProcsSuffix(names []string) string {
	suffix := ""
	for i, n := range names {
		j := strings.LastIndex(n, "-")
		if j < 0 {
			return ""
		}
		if _, err := strconv.Atoi(n[j+1:]); err != nil {
			return ""
		}
		if i == 0 {
			suffix = n[j:]
		} else if n[j:] != suffix {
			return ""
		}
	}
	return suffix
}

// median returns the median of vals (mean of the middle pair for even
// counts). vals must be non-empty; it is not modified.
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Compare gates current against baseline: a benchmark regresses when its
// median ns/op exceeds the baseline's by more than the tolerance
// fraction. Baseline entries absent from current are returned in missing
// (renames and removals warn instead of failing); benchmarks new in
// current are ignored — they become part of the gate once the baseline is
// refreshed.
func Compare(baseline, current []Benchmark, tolerance float64) (regs []Regression, missing []string) {
	cur := make(map[string]Benchmark, len(current))
	for _, b := range current {
		cur[b.Name] = b
	}
	for _, base := range baseline {
		c, ok := cur[base.Name]
		if !ok {
			missing = append(missing, base.Name)
			continue
		}
		if base.NsPerOp <= 0 {
			continue
		}
		ratio := c.NsPerOp / base.NsPerOp
		if ratio > 1+tolerance {
			regs = append(regs, Regression{
				Name:            base.Name,
				BaselineNsPerOp: base.NsPerOp,
				CurrentNsPerOp:  c.NsPerOp,
				Ratio:           ratio,
			})
		}
	}
	sort.Slice(regs, func(a, b int) bool { return regs[a].Ratio > regs[b].Ratio })
	return regs, missing
}
