package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: fadewich
cpu: Example CPU @ 2.40GHz
BenchmarkMDDetectorTick-8      	  291x	      4100 ns/op	     120 B/op	       3 allocs/op
BenchmarkMDDetectorTick-8      	  300000	      4000 ns/op	     120 B/op	       3 allocs/op
BenchmarkMDDetectorTick-8      	  295000	      4300 ns/op	     121 B/op	       3 allocs/op
BenchmarkFleetThroughput/offices-64-8 	      50	  22000000 ns/op	        510000 ticks/sec
BenchmarkFleetThroughput/offices-64-8 	      52	  21000000 ns/op	        530000 ticks/sec
BenchmarkAblationSVMKernel/linear-8   	       9	 120000000 ns/op	         0.8100 accuracy
PASS
ok  	fadewich	42.0s
`

func TestParseAggregatesMedians(t *testing.T) {
	benches, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Benchmark)
	for _, b := range benches {
		byName[b.Name] = b
	}

	// The corrupted first MD line (non-numeric iteration count) is
	// skipped; the remaining two samples collapse to their median.
	md, ok := byName["BenchmarkMDDetectorTick"]
	if !ok {
		t.Fatalf("MD benchmark missing: %+v", benches)
	}
	if md.Runs != 2 || md.NsPerOp != 4150 {
		t.Fatalf("MD aggregate: runs %d ns/op %.0f, want 2 / 4150", md.Runs, md.NsPerOp)
	}
	if md.BytesPerOp == nil || *md.BytesPerOp != 120.5 || md.AllocsPerOp == nil || *md.AllocsPerOp != 3 {
		t.Fatalf("MD benchmem medians: %+v", md)
	}

	// Sub-benchmark names keep the sub-case but lose the -GOMAXPROCS
	// suffix; custom metrics ride along.
	fleet, ok := byName["BenchmarkFleetThroughput/offices-64"]
	if !ok {
		t.Fatalf("fleet benchmark missing or suffix not stripped: %+v", benches)
	}
	if fleet.NsPerOp != 21500000 || fleet.Metrics["ticks/sec"] != 520000 {
		t.Fatalf("fleet aggregate: %+v", fleet)
	}
	if svm := byName["BenchmarkAblationSVMKernel/linear"]; svm.Metrics["accuracy"] != 0.81 {
		t.Fatalf("custom metric lost: %+v", svm)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	benches, err := Parse(strings.NewReader("PASS\nok fadewich 1.0s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output", len(benches))
	}
}

func TestCompareGate(t *testing.T) {
	baseline := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 2000},
		{Name: "BenchmarkGone", NsPerOp: 500},
	}
	current := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1100}, // +10%: within tolerance
		{Name: "BenchmarkB", NsPerOp: 2400}, // +20%: trips
		{Name: "BenchmarkNew", NsPerOp: 50}, // ignored until baselined
	}
	regs, missing := Compare(baseline, current, 0.15)
	if len(regs) != 1 || regs[0].Name != "BenchmarkB" {
		t.Fatalf("regressions: %+v", regs)
	}
	if regs[0].Ratio < 1.19 || regs[0].Ratio > 1.21 {
		t.Fatalf("ratio %.3f, want ~1.2", regs[0].Ratio)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkGone" {
		t.Fatalf("missing: %v", missing)
	}
}

func TestCompareExactToleranceBoundaryPasses(t *testing.T) {
	baseline := []Benchmark{{Name: "BenchmarkA", NsPerOp: 1000}}
	current := []Benchmark{{Name: "BenchmarkA", NsPerOp: 1150}}
	if regs, _ := Compare(baseline, current, 0.15); len(regs) != 0 {
		t.Fatalf("exactly-at-tolerance run tripped the gate: %+v", regs)
	}
}

func TestCompareSpeedupsNeverTrip(t *testing.T) {
	baseline := []Benchmark{{Name: "BenchmarkA", NsPerOp: 1000}}
	current := []Benchmark{{Name: "BenchmarkA", NsPerOp: 10}}
	if regs, _ := Compare(baseline, current, 0.15); len(regs) != 0 {
		t.Fatalf("speedup tripped the gate: %+v", regs)
	}
}

func TestCommonProcsSuffix(t *testing.T) {
	cases := []struct {
		names []string
		want  string
	}{
		// Multi-core run: every name carries the same -GOMAXPROCS.
		{[]string{"BenchmarkFoo-8", "BenchmarkBar/sub-case-8", "BenchmarkBaz/offices-64-8"}, "-8"},
		// Single-CPU run: go test appends nothing; the trailing -64 is
		// part of the sub-benchmark's own name and must survive.
		{[]string{"BenchmarkSimulateDay", "BenchmarkFleet/offices-64"}, ""},
		// -cpu 1,2 style mixed suffixes: ambiguous, strip nothing.
		{[]string{"BenchmarkFoo-2", "BenchmarkFoo-4"}, ""},
		{[]string{"BenchmarkFoo/d-1.2s-8"}, "-8"},
		{nil, ""},
	}
	for _, c := range cases {
		if got := commonProcsSuffix(c.names); got != c.want {
			t.Errorf("commonProcsSuffix(%v) = %q, want %q", c.names, got, c.want)
		}
	}
}

// TestParseSingleCPUKeepsNumericSubBenchNames pins the 1-CPU regression:
// without a -GOMAXPROCS suffix on the lines, a sub-benchmark name ending
// in a number must not be truncated.
func TestParseSingleCPUKeepsNumericSubBenchNames(t *testing.T) {
	input := `BenchmarkSimulateDay 	      48	  28065275 ns/op
BenchmarkFleetThroughput/offices-64 	      50	  22000000 ns/op	    510000 ticks/sec
`
	benches, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, b := range benches {
		names = append(names, b.Name)
	}
	want := []string{"BenchmarkSimulateDay", "BenchmarkFleetThroughput/offices-64"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("parsed names %v, want %v", names, want)
	}
}

func TestToBenchRoundTrips(t *testing.T) {
	bytesV, allocsV := 128.0, 3.0
	in := []Benchmark{
		{Name: "BenchmarkAlpha", Runs: 5, NsPerOp: 1234.5, BytesPerOp: &bytesV, AllocsPerOp: &allocsV,
			Metrics: map[string]float64{"ticks/sec": 99000, "ns/action": 62.5}},
		{Name: "BenchmarkBeta/sub-16", Runs: 5, NsPerOp: 42},
	}
	text := ToBench(in)
	got, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	if got[0].Name != "BenchmarkAlpha" || got[0].NsPerOp != 1234.5 {
		t.Fatalf("alpha mangled: %+v", got[0])
	}
	if got[0].BytesPerOp == nil || *got[0].BytesPerOp != 128 || got[0].AllocsPerOp == nil || *got[0].AllocsPerOp != 3 {
		t.Fatalf("benchmem medians mangled: %+v", got[0])
	}
	if got[0].Metrics["ticks/sec"] != 99000 || got[0].Metrics["ns/action"] != 62.5 {
		t.Fatalf("custom metrics mangled: %+v", got[0].Metrics)
	}
	if got[1].Name != "BenchmarkBeta/sub-16" || got[1].NsPerOp != 42 {
		t.Fatalf("beta mangled: %+v", got[1])
	}
}
