// Command fadewich-tail is the consumer end of the action path: it
// decodes the wire-framed deauthentication stream a fleet produces —
// live over TCP, durably from a segment directory, or merged from a
// cluster of workers — and renders it for humans (table) or machines
// (JSONL, the codec-v1 payload bytes).
//
// Three sources, one decoder:
//
//   - fadewich-tail -listen :9000
//     accepts connections from fadewich-sim -sink tcp:HOST:9000 (the
//     TCPSink dials out) and decodes frames as they arrive, both codec
//     versions, across reconnects. Listen mode always follows.
//
//     The accept loop is deliberately permissive: it accepts any
//     number of concurrent connections for the listener's whole
//     lifetime (a sink redial is just the next accepted connection),
//     frames from concurrent connections interleave in arrival order
//     at whole-frame granularity with no cross-connection ordering
//     guarantee, and a failed connection is reported to stderr without
//     stopping the listener or the other connections. For a fan-in
//     that *does* restore global order across producers, use -route.
//
//   - fadewich-tail -route -listen :9100 -expect N
//     is the cluster stream router (see docs/DEPLOYMENT.md): it
//     accepts the epoch-tagged frame streams of N fadewich-serve
//     workers (-mode worker -forward), k-way merges them back into
//     global (time, office) order epoch by epoch, renders the merged
//     stream, and exits once all N workers have sent their final
//     frame. The merged stream can additionally be re-emitted as a
//     plain TCP wire stream (-forward, feeding a downstream
//     fadewich-tail -listen) and/or persisted to a segment log
//     (-segments DIR) under -codec.
//
//   - fadewich-tail DIR
//     replays the segment directory a fadewich-sim -sink seg:DIR run
//     left behind, across segment files, stopping cleanly before a
//     torn final frame (the tail a crash leaves). -follow keeps
//     polling for frames a live writer appends; -repair truncates a
//     torn final frame in place first (never combine with a live
//     writer).
//
// Filters and rendering apply to every source: -office N keeps one
// office's actions (repeatable as a comma list), -from-tick/-to-tick
// bound the office-clock time in seconds, -format picks jsonl
// (byte-exact codec-v1 lines, suitable for diffing against a LogSink
// file) or table. In -route mode the filters shape only the rendered
// output — the -forward and -segments streams always carry the full
// merge.
//
// Usage:
//
//	fadewich-tail [-follow] [-repair] [-office LIST] [-from-tick T]
//	              [-to-tick T] [-format jsonl|table] DIR
//	fadewich-tail -listen ADDR [-office LIST] [-from-tick T]
//	              [-to-tick T] [-format jsonl|table]
//	fadewich-tail -route -listen ADDR -expect N [-forward ADDR]
//	              [-segments DIR] [-codec 1|2] [-format jsonl|table]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"fadewich/internal/cluster"
	"fadewich/internal/engine"
	"fadewich/internal/segment"
	"fadewich/internal/stream"
	"fadewich/internal/wire"
)

func main() {
	listen := flag.String("listen", "", "accept TCPSink connections on this address and decode the live stream")
	route := flag.Bool("route", false, "cluster stream router: merge -expect epoch-tagged worker streams back into global order (needs -listen)")
	expect := flag.Int("expect", 0, "route mode: number of worker sources that must deliver a final frame before exiting")
	forward := flag.String("forward", "", "route mode: re-emit the merged stream to this TCP address as plain wire frames")
	segDir := flag.String("segments", "", "route mode: persist the merged stream to a rotating segment log in this directory")
	codec := flag.Int("codec", 1, "route mode: wire codec of -forward and -segments output: 1 = JSONL, 2 = compact binary")
	compress := flag.Bool("compress", false, "route mode: deflate frame bodies on -forward and -segments output (decoded output is byte-identical)")
	follow := flag.Bool("follow", false, "segment dir: keep polling for new frames instead of stopping at the end")
	repair := flag.Bool("repair", false, "segment dir: truncate a torn final frame in place before replaying")
	officeList := flag.String("office", "", "only these office IDs (comma-separated; empty = all)")
	fromTick := flag.Float64("from-tick", 0, "only actions at office-clock time >= this many seconds (0 = from the start)")
	toTick := flag.Float64("to-tick", 0, "only actions at office-clock time <= this many seconds (0 = unbounded)")
	format := flag.String("format", "table", "output format: jsonl (byte-exact codec-v1 lines) or table")
	flag.Parse()

	opt := tailOptions{
		listen:   *listen,
		route:    *route,
		expect:   *expect,
		forward:  *forward,
		segDir:   *segDir,
		codec:    *codec,
		compress: *compress,
		follow:   *follow,
		repair:   *repair,
		offices:  *officeList,
		from:     *fromTick,
		to:       *toTick,
		format:   *format,
	}
	if err := run(opt, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "fadewich-tail: %v\n", err)
		os.Exit(1)
	}
}

type tailOptions struct {
	listen   string
	route    bool
	expect   int
	forward  string
	segDir   string
	codec    int
	compress bool
	follow   bool
	repair   bool
	offices  string
	from     float64
	to       float64
	format   string
}

func run(opt tailOptions, args []string) error {
	render, err := newRenderer(os.Stdout, opt.format)
	if err != nil {
		return err
	}
	offices, err := parseOffices(opt.offices)
	if err != nil {
		return err
	}
	f := filter{offices: offices, from: opt.from, to: opt.to}
	if !opt.route && (opt.expect != 0 || opt.forward != "" || opt.segDir != "" || opt.compress) {
		return errors.New("-expect, -forward, -segments and -compress need -route")
	}
	switch {
	case opt.listen != "" && len(args) > 0:
		return errors.New("-listen and a segment directory are mutually exclusive")
	case opt.route:
		if opt.listen == "" {
			return errors.New("-route needs -listen")
		}
		if opt.repair || opt.follow {
			return errors.New("-repair and -follow only apply to a segment directory")
		}
		if opt.expect < 1 {
			return errors.New("-route needs -expect (the number of worker streams)")
		}
		if opt.codec != 1 && opt.codec != 2 {
			return fmt.Errorf("unknown wire codec %d (want 1 or 2)", opt.codec)
		}
		return routeStream(opt, f, render)
	case opt.listen != "":
		if opt.repair {
			return errors.New("-repair only applies to a segment directory")
		}
		return tailTCP(opt.listen, f, render)
	case len(args) == 1:
		if opt.repair && opt.follow {
			return errors.New("-repair with -follow would truncate a frame a live writer may still be appending")
		}
		return tailDir(args[0], opt.follow, segment.Options{
			FromTime: opt.from,
			ToTime:   opt.to,
			Offices:  offices,
			Repair:   opt.repair,
		}, render)
	default:
		return errors.New("need exactly one segment directory, or -listen ADDR")
	}
}

// parseOffices parses the -office comma list.
func parseOffices(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad office ID %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// filter is the action filter applied in listen and route mode (the
// segment reader filters dir-mode replays itself).
type filter struct {
	offices []int
	from    float64
	to      float64
}

func (f filter) keep(a engine.OfficeAction) bool {
	if len(f.offices) > 0 {
		ok := false
		for _, o := range f.offices {
			if a.Office == o {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.from > 0 && a.Action.Time < f.from {
		return false
	}
	if f.to > 0 && a.Action.Time > f.to {
		return false
	}
	return true
}

func (f filter) apply(acts []engine.OfficeAction) []engine.OfficeAction {
	kept := acts[:0]
	for _, a := range acts {
		if f.keep(a) {
			kept = append(kept, a)
		}
	}
	return kept
}

// renderer writes decoded batches to the output writer.
type renderer struct {
	out     *bufio.Writer
	jsonl   bool
	buf     []byte
	header  bool
	actions uint64
	frames  uint64
}

func newRenderer(w io.Writer, format string) (*renderer, error) {
	switch format {
	case "jsonl", "table":
		return &renderer{out: bufio.NewWriter(w), jsonl: format == "jsonl"}, nil
	default:
		return nil, fmt.Errorf("unknown format %q (want jsonl or table)", format)
	}
}

func (r *renderer) emit(acts []engine.OfficeAction) error {
	if len(acts) == 0 {
		return nil
	}
	r.frames++
	r.actions += uint64(len(acts))
	if r.jsonl {
		r.buf = wire.AppendJSONL(r.buf[:0], acts)
		if _, err := r.out.Write(r.buf); err != nil {
			return err
		}
		return r.out.Flush()
	}
	if !r.header {
		r.header = true
		fmt.Fprintf(r.out, "%10s  %6s  %-15s  %4s  %-12s  %s\n",
			"TIME", "OFFICE", "TYPE", "WS", "CAUSE", "LABEL")
	}
	for _, a := range acts {
		cause := ""
		if a.Action.Cause != 0 {
			cause = a.Action.Cause.String()
		}
		fmt.Fprintf(r.out, "%10.1f  %6d  %-15s  %4d  %-12s  %d\n",
			a.Action.Time, a.Office, a.Action.Type, a.Action.Workstation, cause, a.Action.Label)
	}
	return r.out.Flush()
}

// tailDir replays (and with follow, keeps tailing) a segment directory.
func tailDir(dir string, follow bool, opt segment.Options, render *renderer) error {
	r, err := segment.OpenDir(dir, opt)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		acts, err := r.Next()
		if err == io.EOF {
			if follow {
				time.Sleep(150 * time.Millisecond)
				continue
			}
			if info, torn := r.Torn(); torn {
				verb := "stopped before"
				if info.Repaired {
					verb = "truncated"
				}
				fmt.Fprintf(os.Stderr, "fadewich-tail: %s a torn final frame: %s (+%d bytes past offset %d)\n",
					verb, info.Path, info.TornBytes, info.Offset)
			}
			fmt.Fprintf(os.Stderr, "fadewich-tail: replayed %d actions in %d frames\n", render.actions, render.frames)
			return nil
		}
		if err != nil {
			return err
		}
		if err := render.emit(acts); err != nil {
			return err
		}
	}
}

// tailTCP accepts TCPSink connections on addr and serves them with
// serveListener until interrupted.
func tailTCP(addr string, f filter, render *renderer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "fadewich-tail: listening on %s\n", ln.Addr())
	return serveListener(ln, f, render)
}

// serveListener is listen mode's accept loop, with the semantics the
// package doc pins down (and TestServeListener enforces): any number of
// concurrent connections for the listener's whole lifetime, frames
// interleaved in arrival order at whole-frame granularity with no
// cross-connection ordering guarantee, per-connection decode failures
// reported without stopping the listener. It returns when the listener
// closes.
func serveListener(ln net.Listener, f filter, render *renderer) error {
	frames := make(chan []engine.OfficeAction, 64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				close(frames)
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				d := wire.NewDecoder(c)
				for {
					acts, err := d.Decode()
					if err != nil {
						if err != io.EOF && !errors.Is(err, wire.ErrTorn) {
							fmt.Fprintf(os.Stderr, "fadewich-tail: %s: %v\n", c.RemoteAddr(), err)
						}
						return
					}
					frames <- acts
				}
			}(conn)
		}
	}()
	for acts := range frames {
		if err := render.emit(f.apply(acts)); err != nil {
			return err
		}
	}
	return nil
}

// routeStream runs the cluster stream router: accept the workers'
// epoch-tagged streams, merge them back into global order, and fan the
// merged stream out to stdout (filtered, rendered), an optional plain
// TCP forward and an optional segment log.
func routeStream(opt tailOptions, f filter, render *renderer) error {
	ln, err := net.Listen("tcp", opt.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fadewich-tail: routing on %s\n", ln.Addr())
	return routeOnListener(ln, opt, f, render)
}

// routeOnListener is route mode minus the listen call; it owns ln.
func routeOnListener(ln net.Listener, opt tailOptions, f filter, render *renderer) error {
	var sinks []stream.Sink
	closeSinks := func() error {
		var first error
		for _, s := range sinks {
			if err := s.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if opt.segDir != "" {
		seg, err := stream.NewSegmentSink(segment.Config{
			Dir:      opt.segDir,
			Version:  wire.Version(opt.codec),
			Compress: opt.compress,
		})
		if err != nil {
			return err
		}
		sinks = append(sinks, seg)
	}
	if opt.forward != "" {
		fwd, err := stream.NewTCPSink(opt.forward)
		if err != nil {
			closeSinks()
			return err
		}
		fwd.Version = wire.Version(opt.codec)
		fwd.Compress = opt.compress
		sinks = append(sinks, fwd)
	}

	var epochs uint64
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Expect: opt.expect,
		OnBatch: func(epoch uint64, batch []engine.OfficeAction) error {
			epochs++
			for _, s := range sinks {
				if err := s.Write(batch); err != nil {
					return err
				}
			}
			// Render last: the filter compacts the batch in place, so the
			// sinks must have encoded it first.
			return render.emit(f.apply(batch))
		},
	})
	if err != nil {
		closeSinks()
		return err
	}
	err = router.Serve(ln)
	if cerr := closeSinks(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	st := router.Stats()
	fmt.Fprintf(os.Stderr, "fadewich-tail: routed %d actions in %d epochs from %d workers (%d duplicate frames dropped)\n",
		st.Actions, epochs, st.SourcesFinal, st.Duplicates)
	return nil
}
