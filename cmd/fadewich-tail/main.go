// Command fadewich-tail is the consumer end of the action path: it
// decodes the wire-framed deauthentication stream a fleet produces —
// live over TCP, or durably from a segment directory — and renders it
// for humans (table) or machines (JSONL, the codec-v1 payload bytes).
//
// Two sources, one decoder:
//
//   - fadewich-tail -listen :9000
//     accepts connections from fadewich-sim -sink tcp:HOST:9000 (the
//     TCPSink dials out) and decodes frames as they arrive, both codec
//     versions, across reconnects. Listen mode always follows.
//
//   - fadewich-tail DIR
//     replays the segment directory a fadewich-sim -sink seg:DIR run
//     left behind, across segment files, stopping cleanly before a
//     torn final frame (the tail a crash leaves). -follow keeps
//     polling for frames a live writer appends; -repair truncates a
//     torn final frame in place first (never combine with a live
//     writer).
//
// Filters and rendering apply to both sources: -office N keeps one
// office's actions (repeatable as a comma list), -from-tick/-to-tick
// bound the office-clock time in seconds, -format picks jsonl
// (byte-exact codec-v1 lines, suitable for diffing against a LogSink
// file) or table.
//
// Usage:
//
//	fadewich-tail [-follow] [-repair] [-office LIST] [-from-tick T]
//	              [-to-tick T] [-format jsonl|table] DIR
//	fadewich-tail -listen ADDR [-office LIST] [-from-tick T]
//	              [-to-tick T] [-format jsonl|table]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"fadewich/internal/engine"
	"fadewich/internal/segment"
	"fadewich/internal/wire"
)

func main() {
	listen := flag.String("listen", "", "accept TCPSink connections on this address and decode the live stream")
	follow := flag.Bool("follow", false, "segment dir: keep polling for new frames instead of stopping at the end")
	repair := flag.Bool("repair", false, "segment dir: truncate a torn final frame in place before replaying")
	officeList := flag.String("office", "", "only these office IDs (comma-separated; empty = all)")
	fromTick := flag.Float64("from-tick", 0, "only actions at office-clock time >= this many seconds (0 = from the start)")
	toTick := flag.Float64("to-tick", 0, "only actions at office-clock time <= this many seconds (0 = unbounded)")
	format := flag.String("format", "table", "output format: jsonl (byte-exact codec-v1 lines) or table")
	flag.Parse()

	if err := run(*listen, flag.Args(), *follow, *repair, *officeList, *fromTick, *toTick, *format); err != nil {
		fmt.Fprintf(os.Stderr, "fadewich-tail: %v\n", err)
		os.Exit(1)
	}
}

func run(listen string, args []string, follow, repair bool, officeList string, fromTick, toTick float64, format string) error {
	render, err := newRenderer(format)
	if err != nil {
		return err
	}
	offices, err := parseOffices(officeList)
	if err != nil {
		return err
	}
	switch {
	case listen != "" && len(args) > 0:
		return errors.New("-listen and a segment directory are mutually exclusive")
	case listen != "":
		if repair {
			return errors.New("-repair only applies to a segment directory")
		}
		return tailTCP(listen, filter{offices: offices, from: fromTick, to: toTick}, render)
	case len(args) == 1:
		if repair && follow {
			return errors.New("-repair with -follow would truncate a frame a live writer may still be appending")
		}
		return tailDir(args[0], follow, segment.Options{
			FromTime: fromTick,
			ToTime:   toTick,
			Offices:  offices,
			Repair:   repair,
		}, render)
	default:
		return errors.New("need exactly one segment directory, or -listen ADDR")
	}
}

// parseOffices parses the -office comma list.
func parseOffices(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad office ID %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// filter is the action filter applied in listen mode (the segment
// reader filters dir-mode replays itself).
type filter struct {
	offices []int
	from    float64
	to      float64
}

func (f filter) keep(a engine.OfficeAction) bool {
	if len(f.offices) > 0 {
		ok := false
		for _, o := range f.offices {
			if a.Office == o {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.from > 0 && a.Action.Time < f.from {
		return false
	}
	if f.to > 0 && a.Action.Time > f.to {
		return false
	}
	return true
}

func (f filter) apply(acts []engine.OfficeAction) []engine.OfficeAction {
	kept := acts[:0]
	for _, a := range acts {
		if f.keep(a) {
			kept = append(kept, a)
		}
	}
	return kept
}

// renderer writes decoded batches to stdout.
type renderer struct {
	out     *bufio.Writer
	jsonl   bool
	buf     []byte
	header  bool
	actions uint64
	frames  uint64
}

func newRenderer(format string) (*renderer, error) {
	switch format {
	case "jsonl", "table":
		return &renderer{out: bufio.NewWriter(os.Stdout), jsonl: format == "jsonl"}, nil
	default:
		return nil, fmt.Errorf("unknown format %q (want jsonl or table)", format)
	}
}

func (r *renderer) emit(acts []engine.OfficeAction) error {
	if len(acts) == 0 {
		return nil
	}
	r.frames++
	r.actions += uint64(len(acts))
	if r.jsonl {
		r.buf = wire.AppendJSONL(r.buf[:0], acts)
		if _, err := r.out.Write(r.buf); err != nil {
			return err
		}
		return r.out.Flush()
	}
	if !r.header {
		r.header = true
		fmt.Fprintf(r.out, "%10s  %6s  %-15s  %4s  %-12s  %s\n",
			"TIME", "OFFICE", "TYPE", "WS", "CAUSE", "LABEL")
	}
	for _, a := range acts {
		cause := ""
		if a.Action.Cause != 0 {
			cause = a.Action.Cause.String()
		}
		fmt.Fprintf(r.out, "%10.1f  %6d  %-15s  %4d  %-12s  %d\n",
			a.Action.Time, a.Office, a.Action.Type, a.Action.Workstation, cause, a.Action.Label)
	}
	return r.out.Flush()
}

// tailDir replays (and with follow, keeps tailing) a segment directory.
func tailDir(dir string, follow bool, opt segment.Options, render *renderer) error {
	r, err := segment.OpenDir(dir, opt)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		acts, err := r.Next()
		if err == io.EOF {
			if follow {
				time.Sleep(150 * time.Millisecond)
				continue
			}
			if info, torn := r.Torn(); torn {
				verb := "stopped before"
				if info.Repaired {
					verb = "truncated"
				}
				fmt.Fprintf(os.Stderr, "fadewich-tail: %s a torn final frame: %s (+%d bytes past offset %d)\n",
					verb, info.Path, info.TornBytes, info.Offset)
			}
			fmt.Fprintf(os.Stderr, "fadewich-tail: replayed %d actions in %d frames\n", render.actions, render.frames)
			return nil
		}
		if err != nil {
			return err
		}
		if err := render.emit(acts); err != nil {
			return err
		}
	}
}

// tailTCP accepts TCPSink connections and decodes their frames until
// interrupted. The sink redials on reconnect, so the accept loop keeps
// serving fresh connections; concurrent sinks are drained concurrently
// but rendered one frame at a time.
func tailTCP(addr string, f filter, render *renderer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "fadewich-tail: listening on %s\n", ln.Addr())
	frames := make(chan []engine.OfficeAction, 64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				close(frames)
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				d := wire.NewDecoder(c)
				for {
					acts, err := d.Decode()
					if err != nil {
						if err != io.EOF && !errors.Is(err, wire.ErrTorn) {
							fmt.Fprintf(os.Stderr, "fadewich-tail: %s: %v\n", c.RemoteAddr(), err)
						}
						return
					}
					frames <- acts
				}
			}(conn)
		}
	}()
	for acts := range frames {
		if err := render.emit(f.apply(acts)); err != nil {
			return err
		}
	}
	return nil
}
