package main

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/segment"
	"fadewich/internal/wire"
)

func tact(office int, t float64) engine.OfficeAction {
	return engine.OfficeAction{
		Office: office,
		Action: core.Action{Type: core.ActionAlertEnter, Time: t, Workstation: 1},
	}
}

// syncBuffer is a bytes.Buffer safe to read while the renderer's
// goroutine writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// dial connects to ln and returns the connection.
func dial(t *testing.T, ln net.Listener) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// sendPlain writes one untagged frame carrying batch.
func sendPlain(t *testing.T, conn net.Conn, batch []engine.OfficeAction) {
	t.Helper()
	frame, err := wire.AppendFrame(nil, wire.V1JSONL, batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
}

// sendTagged writes one tagged frame for (src, epoch); final selects the
// end-of-stream frame.
func sendTagged(t *testing.T, conn net.Conn, src uint8, epoch uint64, final bool, batch []engine.OfficeAction) {
	t.Helper()
	frame, err := wire.AppendTaggedFrame(nil, wire.V1JSONL, wire.Tag{Source: src, Epoch: epoch, Final: final}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
}

// TestServeListenerInterleavesConnections pins the plain -listen accept
// loop's documented semantics: concurrent connections are all served,
// frames interleave at whole-frame granularity (every frame's actions
// surface exactly once, contiguously), a connection carrying garbage is
// dropped without stopping the listener, and serveListener returns only
// when the listener closes.
func TestServeListenerInterleavesConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var out syncBuffer
	render, err := newRenderer(&out, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	doneServe := make(chan error, 1)
	go func() { doneServe <- serveListener(ln, filter{}, render) }()

	c1 := dial(t, ln)
	c2 := dial(t, ln)
	b1 := []engine.OfficeAction{tact(1, 1.0), tact(1, 2.0)}
	b2 := []engine.OfficeAction{tact(2, 1.5)}
	b3 := []engine.OfficeAction{tact(3, 9.0)}
	sendPlain(t, c1, b1)
	sendPlain(t, c2, b2)

	// A third connection delivering garbage must not take the listener
	// (or the healthy connections) down.
	c3 := dial(t, ln)
	if _, err := c3.Write([]byte("not a wire frame at all")); err != nil {
		t.Fatal(err)
	}
	c3.Close()

	sendPlain(t, c1, b3)
	c1.Close()
	c2.Close()

	want := map[string]bool{}
	for _, b := range [][]engine.OfficeAction{b1, b2, b3} {
		want[string(wire.AppendJSONL(nil, b))] = false
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := out.String()
		// Every frame must appear exactly once and contiguously —
		// whole-frame granularity means a frame's lines are never split
		// by another connection's output.
		all := true
		for block := range want {
			if strings.Count(got, block) != 1 {
				all = false
				break
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frames missing or split after garbage connection; output:\n%s", got)
		}
		time.Sleep(10 * time.Millisecond)
	}

	select {
	case err := <-doneServe:
		t.Fatalf("serveListener returned (%v) while the listener was still open", err)
	default:
	}
	ln.Close()
	if err := <-doneServe; err != nil {
		t.Fatalf("serveListener: %v", err)
	}
}

// TestRouteOnListener drives route mode end to end in-process: two
// tagged worker streams arrive out of phase and the rendered output is
// the byte-exact globally-ordered merge.
func TestRouteOnListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	render, err := newRenderer(&out, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	segDir := t.TempDir()
	doneServe := make(chan error, 1)
	go func() {
		doneServe <- routeOnListener(ln, tailOptions{expect: 2, segDir: segDir, codec: 1}, filter{}, render)
	}()

	w1 := dial(t, ln)
	w2 := dial(t, ln)
	// Epoch 1: w1 has offices 0,2; w2 has office 1. w2 runs an epoch
	// ahead before w1 catches up — the watermark must hold epoch 2.
	sendTagged(t, w1, 1, 1, false, []engine.OfficeAction{tact(0, 1.0), tact(2, 3.0)})
	sendTagged(t, w2, 2, 1, false, []engine.OfficeAction{tact(1, 2.0)})
	sendTagged(t, w2, 2, 2, false, []engine.OfficeAction{tact(1, 4.5)})
	sendTagged(t, w1, 1, 2, false, []engine.OfficeAction{tact(0, 4.0)})
	sendTagged(t, w1, 1, 3, true, nil)
	sendTagged(t, w2, 2, 3, true, nil)
	w1.Close()
	w2.Close()

	if err := <-doneServe; err != nil {
		t.Fatalf("routeOnListener: %v", err)
	}
	var want []byte
	want = wire.AppendJSONL(want, []engine.OfficeAction{tact(0, 1.0), tact(1, 2.0), tact(2, 3.0)})
	want = wire.AppendJSONL(want, []engine.OfficeAction{tact(0, 4.0), tact(1, 4.5)})
	if got := out.String(); got != string(want) {
		t.Fatalf("merged stream mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The -segments log must replay to the same merged stream.
	r, err := segment.OpenDir(segDir, segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var segBytes []byte
	for {
		acts, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("replaying route segments: %v", err)
		}
		segBytes = wire.AppendJSONL(segBytes, acts)
	}
	if string(segBytes) != string(want) {
		t.Fatalf("segment replay mismatch:\ngot:\n%s\nwant:\n%s", segBytes, want)
	}
}

// TestRunFlagValidation pins the CLI surface's mutual-exclusion rules.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  tailOptions
		args []string
	}{
		{"route without listen", tailOptions{route: true, expect: 2, format: "table"}, nil},
		{"route without expect", tailOptions{route: true, listen: "127.0.0.1:0", format: "table"}, nil},
		{"route with follow", tailOptions{route: true, listen: "127.0.0.1:0", expect: 2, follow: true, format: "table"}, nil},
		{"route bad codec", tailOptions{route: true, listen: "127.0.0.1:0", expect: 2, codec: 3, format: "table"}, nil},
		{"expect without route", tailOptions{listen: "127.0.0.1:0", expect: 2, format: "table"}, nil},
		{"forward without route", tailOptions{forward: "127.0.0.1:1", format: "table"}, []string{"dir"}},
		{"segments without route", tailOptions{segDir: "x", format: "table"}, []string{"dir"}},
		{"listen with dir", tailOptions{listen: "127.0.0.1:0", format: "table"}, []string{"dir"}},
		{"repair with listen", tailOptions{listen: "127.0.0.1:0", repair: true, format: "table"}, nil},
		{"repair with follow", tailOptions{repair: true, follow: true, format: "table"}, []string{"dir"}},
		{"no source", tailOptions{format: "table"}, nil},
		{"bad format", tailOptions{listen: "127.0.0.1:0", format: "xml"}, nil},
	}
	for _, tc := range cases {
		if err := run(tc.opt, tc.args); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
