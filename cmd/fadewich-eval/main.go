// Command fadewich-eval regenerates the tables and figures of the
// FADEWICH paper's evaluation from a simulated dataset.
//
// Usage:
//
//	fadewich-eval [-exp all|fig2|table2|fig7|table3|fig8|fig9|fig10|table4|fig11|fig12|table5|fig13]
//	              [-days N] [-seed S] [-draws D] [-parallel P] [-csv]
//
// Each experiment prints an ASCII table (and, with -csv, the raw series)
// that corresponds to one table or figure of the paper; EXPERIMENTS.md
// records a reference run side by side with the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"fadewich/internal/eval"
	"fadewich/internal/prof"
	"fadewich/internal/report"
	"fadewich/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig2, table2, fig7, table3, fig8, fig9, fig10, table4, fig11, fig12, table5, fig13)")
	days := flag.Int("days", 5, "simulated working days")
	seed := flag.Uint64("seed", 42, "simulation seed")
	draws := flag.Int("draws", 100, "input redraws for the usability simulation")
	parallel := flag.Int("parallel", 0, "worker pool width for generation and sweeps (0 = one per CPU, 1 = sequential)")
	csv := flag.Bool("csv", false, "also print figure series as CSV")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile to this file at exit")
	flag.Parse()

	stopProf, err := prof.Start(prof.Flags{CPU: *cpuProfile, Mem: *memProfile, Mutex: *mutexProfile})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fadewich-eval: %v\n", err)
		os.Exit(1)
	}
	err = run(*exp, *days, *seed, *draws, *parallel, *csv)
	// Flush profiles before deciding the exit code (os.Exit would skip a
	// deferred flush), and let a profile-write failure surface when the
	// run itself succeeded.
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fadewich-eval: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string, days int, seed uint64, draws, parallel int, csv bool) error {
	start := time.Now()
	fmt.Printf("generating dataset: %d day(s), seed %d ...\n", days, seed)
	ds, err := sim.Generate(sim.Config{Days: days, Seed: seed, Workers: parallel})
	if err != nil {
		return err
	}
	h, err := eval.NewHarness(ds, eval.Options{Seed: seed, Workers: parallel})
	if err != nil {
		return err
	}
	fmt.Printf("dataset ready in %.1fs: %d streams, %.0f monitored hours\n\n",
		time.Since(start).Seconds(), ds.NumStreams(), ds.TotalHours())

	runners := map[string]func(*eval.Harness, int, bool) error{
		"table2": runTable2,
		"fig2":   runFig2,
		"fig7":   runFig7,
		"table3": runTable3,
		"fig8":   runFig8,
		"fig9":   runFig9,
		"fig10":  runFig10,
		"table4": runTable4,
		"fig11":  runFig11,
		"fig12":  runFig12,
		"table5": runTable5,
		"fig13":  runFig13,
	}
	order := []string{"table2", "fig2", "fig7", "table3", "fig8", "fig9", "fig10", "table4", "fig11", "fig12", "table5", "fig13"}

	exp = strings.ToLower(exp)
	if exp == "all" {
		for _, name := range order {
			t0 := time.Now()
			if err := runners[name](h, draws, csv); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Printf("[%s done in %.1fs]\n\n", name, time.Since(t0).Seconds())
		}
		return nil
	}
	runner, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want one of %s, or all)", exp, strings.Join(order, ", "))
	}
	return runner(h, draws, csv)
}

func runTable2(h *eval.Harness, _ int, _ bool) error {
	rows := h.Table2()
	t := report.NewTable("Table II — labelled events collected (paper: w0=67 w1=21 w2=20 w3=22)", "label", "events")
	total := 0
	for _, r := range rows {
		t.AddRow(r.Label, r.Count)
		total += r.Count
	}
	t.AddRow("total", total)
	t.Render(os.Stdout)
	return nil
}

func runFig2(h *eval.Harness, _ int, csv bool) error {
	data, err := h.Fig2()
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 2 — distribution of the std-dev sum (quiet vs walking)", "condition", "n", "mean", "p95", "max")
	addDist := func(name string, xs []float64) {
		s := summarize(xs)
		t.AddRow(name, s.n, s.mean, s.p95, s.max)
	}
	addDist("normal", data.Normal)
	addDist("walking", data.Walking)
	t.Render(os.Stdout)
	fmt.Printf("99th percentile threshold of the normal profile: %.2f\n", data.Threshold)
	if csv {
		report.WriteCSV(os.Stdout, report.Series{Name: "normal-kde", X: data.CurveX, Y: data.CurveY})
	}
	return nil
}

func runFig7(h *eval.Harness, _ int, csv bool) error {
	pts, err := h.Fig7(nil, nil)
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 7 — MD F-measure vs t∆ (paper: peak near t∆≈5)", "t∆ (s)", "n=3", "n=5", "n=7", "n=9")
	byTD := map[float64]map[int]float64{}
	var tds []float64
	for _, p := range pts {
		if byTD[p.TDelta] == nil {
			byTD[p.TDelta] = map[int]float64{}
			tds = append(tds, p.TDelta)
		}
		byTD[p.TDelta][p.Sensors] = p.FMeasure
	}
	for _, td := range tds {
		m := byTD[td]
		t.AddRow(td, m[3], m[5], m[7], m[9])
	}
	t.Render(os.Stdout)
	if csv {
		var series []report.Series
		for _, n := range []int{3, 5, 7, 9} {
			s := report.Series{Name: fmt.Sprintf("n=%d", n)}
			for _, td := range tds {
				s.X = append(s.X, td)
				s.Y = append(s.Y, byTD[td][n])
			}
			series = append(series, s)
		}
		report.WriteCSV(os.Stdout, series...)
	}
	return nil
}

func runTable3(h *eval.Harness, _ int, _ bool) error {
	rows, err := h.Table3(0)
	if err != nil {
		return err
	}
	t := report.NewTable("Table III — MD performance at t∆=4.5 s (paper: TP .47→.95, FN .51→0)",
		"sensors", "TP frac", "TP #", "FP frac", "FP #", "FN frac", "FN #")
	for _, r := range rows {
		tp, fp, fn := r.Fractions()
		t.AddRow(r.Sensors, round2(tp), r.Detection.TP, round2(fp), r.Detection.FP, round2(fn), r.Detection.FN)
	}
	t.Render(os.Stdout)
	return nil
}

func runFig8(h *eval.Harness, _ int, csv bool) error {
	pts, err := h.Fig8(eval.Fig8Config{})
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 8 — RE accuracy vs training samples (paper: >0.90 at 7+ sensors after ~40 samples)",
		"sensors", "train size", "accuracy", "ci95")
	for _, p := range pts {
		t.AddRow(p.Sensors, p.TrainSize, round2(p.Accuracy), round2(p.CI95))
	}
	t.Render(os.Stdout)
	if csv {
		byN := map[int]*report.Series{}
		var order []int
		for _, p := range pts {
			s, ok := byN[p.Sensors]
			if !ok {
				s = &report.Series{Name: fmt.Sprintf("n=%d", p.Sensors)}
				byN[p.Sensors] = s
				order = append(order, p.Sensors)
			}
			s.X = append(s.X, float64(p.TrainSize))
			s.Y = append(s.Y, p.Accuracy)
		}
		var series []report.Series
		for _, n := range order {
			series = append(series, *byN[n])
		}
		report.WriteCSV(os.Stdout, series...)
	}
	return nil
}

func runFig9(h *eval.Harness, _ int, csv bool) error {
	curves, err := h.Fig9(nil, 10)
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 9 — % workstations deauthenticated vs time elapsed (paper: step at 8 s, all ≤ ~6 s at 9 sensors)",
		"sensors", "case A", "case B", "case C", "% ≤ 6s", "% ≤ 8.2s", "% ≤ 10s")
	for _, c := range curves {
		t.AddRow(c.Sensors, c.Cases[eval.CaseA], c.Cases[eval.CaseB], c.Cases[eval.CaseC],
			round1(curveAt(c, 6)), round1(curveAt(c, 8.2)), round1(curveAt(c, 10)))
	}
	t.Render(os.Stdout)
	if csv {
		var series []report.Series
		for _, c := range curves {
			series = append(series, report.Series{Name: fmt.Sprintf("n=%d", c.Sensors), X: c.X, Y: c.Y})
		}
		report.WriteCSV(os.Stdout, series...)
	}
	return nil
}

func curveAt(c eval.Fig9Curve, x float64) float64 {
	for i := range c.X {
		if c.X[i] >= x {
			return c.Y[i]
		}
	}
	if len(c.Y) == 0 {
		return 0
	}
	return c.Y[len(c.Y)-1]
}

func runFig10(h *eval.Harness, _ int, _ bool) error {
	rows, err := h.Fig10(eval.AdversaryDelays{})
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 10 — attack opportunities (paper: 100% under time-out, →0 at 8+ sensors)",
		"policy", "departures", "insider %", "co-worker %")
	for _, r := range rows {
		t.AddRow(r.Policy, r.Departures, round1(r.InsiderPct), round1(r.CoworkerPct))
	}
	t.Render(os.Stdout)
	return nil
}

func runTable4(h *eval.Harness, draws int, _ bool) error {
	rows, err := h.Table4(draws)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Table IV — usability over %d input draws (paper: cost ≤ 37 s/day)", draws),
		"sensors", "screensavers/day", "(std)", "deauths/day", "(std)", "cost s/day")
	for _, r := range rows {
		t.AddRow(r.Sensors, round2(r.ScreensaversPerDay), round2(r.ScreensaversStd),
			round2(r.DeauthsPerDay), round2(r.DeauthsStd), round1(r.CostPerDay))
	}
	t.Render(os.Stdout)
	return nil
}

func runFig11(h *eval.Harness, _ int, _ bool) error {
	data, err := h.Fig11()
	if err != nil {
		return err
	}
	fmt.Println("== Fig 11 — correlations between per-stream variances ==")
	fmt.Printf("streams: %d; mean |corr| sharing a sensor: %.3f; disjoint: %.3f\n",
		len(data.StreamNames), data.SharedEndpointMean, data.DisjointMean)
	report.CorrelationSummary(os.Stdout, data.Corr)
	return nil
}

func runFig12(h *eval.Harness, _ int, _ bool) error {
	data, err := h.Fig12(0)
	if err != nil {
		return err
	}
	report.Heatmap(os.Stdout, "Fig 12 — stream importance (RMI) over the floor plan (paper: d5 least informative)", data.Grid)
	// Per-sensor aggregate importance.
	t := report.NewTable("per-sensor mean stream RMI", "sensor", "mean RMI")
	sensors := len(h.Dataset().Layout.Sensors)
	sums := make([]float64, sensors)
	counts := make([]int, sensors)
	for k, l := range data.Links {
		sums[l.TX] += data.StreamRMI[k]
		counts[l.TX]++
		sums[l.RX] += data.StreamRMI[k]
		counts[l.RX]++
	}
	for i := 0; i < sensors; i++ {
		if counts[i] > 0 {
			t.AddRow(fmt.Sprintf("d%d", i+1), round3(sums[i]/float64(counts[i])))
		}
	}
	t.Render(os.Stdout)
	return nil
}

func runTable5(h *eval.Harness, _ int, _ bool) error {
	rows, err := h.Table5(15)
	if err != nil {
		return err
	}
	t := report.NewTable("Table V — top 15 features by RMI", "rank", "feature", "RMI")
	for i, r := range rows {
		t.AddRow(i+1, r.Name, round3(r.RMI))
	}
	t.Render(os.Stdout)
	return nil
}

func runFig13(h *eval.Harness, draws int, _ bool) error {
	rows, err := h.Fig13(draws / 2)
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 13 — vulnerable time vs total user cost (paper: exponential drop in vulnerable time)",
		"policy", "vulnerable (min)", "total cost (min)")
	for _, r := range rows {
		t.AddRow(r.Policy, round1(r.VulnerableMin), round1(r.TotalCostMin))
	}
	t.Render(os.Stdout)
	return nil
}

type distSummary struct {
	n              int
	mean, p95, max float64
}

func summarize(xs []float64) distSummary {
	if len(xs) == 0 {
		return distSummary{}
	}
	var sum, max float64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return distSummary{
		n:    len(xs),
		mean: sum / float64(len(xs)),
		p95:  sorted[int(0.95*float64(len(sorted)-1))],
		max:  max,
	}
}

func round1(x float64) float64 { return roundN(x, 10) }
func round2(x float64) float64 { return roundN(x, 100) }
func round3(x float64) float64 { return roundN(x, 1000) }

func roundN(x float64, scale float64) float64 {
	if x < 0 {
		return -roundN(-x, scale)
	}
	return float64(int(x*scale+0.5)) / scale
}
