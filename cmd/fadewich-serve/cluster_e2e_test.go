// Multi-node end-to-end test of the cluster wire layer: a coordinator
// shards a 48-office spec onto workers, each worker streams epoch-tagged
// frames to a fadewich-tail -route fan-in, and the router's merged
// output must be byte-identical to a single-process reference fleet of
// the full spec — including across a worker joining mid-run, which
// reshards a subset of offices onto the new node under fresh global IDs.
//
// The identity argument: gids assign 0..n−1 in spec order exactly like
// the reference fleet's IDs; a reshard mirrors the reference applying
// the same change as remove + fresh add (in spec order, so fresh ids ==
// fresh gids); and within an epoch the workers' office sets are
// disjoint, so the router's k-way merge of per-worker runs reconstructs
// the batch the reference ingestor dispatched for the same flush.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"fadewich/internal/core"
	"fadewich/internal/kma"
	"fadewich/internal/office"
	"fadewich/internal/rng"
	"fadewich/internal/segment"
	"fadewich/internal/serve"
	"fadewich/internal/sim"
	"fadewich/internal/wire"
)

const clusterFleet = 48

// clusterAssignments mirrors cluster.Assignments' JSON (the test talks
// to the coordinator only over HTTP, like a real operator).
type clusterAssignments struct {
	Generation uint64 `json:"generation"`
	GIDsIssued int    `json:"gids_issued"`
	Workers    []struct {
		Name    string   `json:"name"`
		Source  uint8    `json:"source"`
		Offices []string `json:"offices"`
	} `json:"workers"`
	Offices []struct {
		Name   string `json:"name"`
		GID    int    `json:"gid"`
		Worker string `json:"worker"`
	} `json:"offices"`
}

// proc is a child process with its stderr scanned for the bound-address
// line and retained for failure reports.
type proc struct {
	cmd    *exec.Cmd
	name   string
	addrCh chan string
	stdout bytes.Buffer

	mu      sync.Mutex
	stderr  bytes.Buffer
	scanned chan struct{}
}

// startProc launches bin, capturing stdout and scanning stderr for
// addrPrefix. Killing on test cleanup is registered; a clean exit is
// awaited explicitly via wait.
func startProc(t *testing.T, name, addrPrefix, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{
		cmd:     exec.Command(bin, args...),
		name:    name,
		addrCh:  make(chan string, 1),
		scanned: make(chan struct{}),
	}
	p.cmd.Stdout = &p.stdout
	stderrPipe, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	go func() {
		defer close(p.scanned)
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.stderr.WriteString(line)
			p.stderr.WriteByte('\n')
			p.mu.Unlock()
			if addr, ok := strings.CutPrefix(line, addrPrefix); ok {
				select {
				case p.addrCh <- addr:
				default:
				}
			}
		}
	}()
	return p
}

func (p *proc) errOutput() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// addr waits for the process to report its bound address.
func (p *proc) addr(t *testing.T) string {
	t.Helper()
	select {
	case a := <-p.addrCh:
		return a
	case <-time.After(30 * time.Second):
		t.Fatalf("%s never reported its address; stderr:\n%s", p.name, p.errOutput())
		return ""
	}
}

// wait expects the process to exit cleanly within the timeout. The
// stderr pipe is read to EOF before Wait reaps the child — Wait closes
// the pipe, and reaping concurrently with the scanner can discard the
// last lines.
func (p *proc) wait(t *testing.T, timeout time.Duration) {
	t.Helper()
	select {
	case <-p.scanned:
	case <-time.After(timeout):
		t.Fatalf("%s did not exit; stderr:\n%s", p.name, p.errOutput())
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("%s exit: %v\nstderr:\n%s", p.name, err, p.errOutput())
	}
}

// term SIGTERMs the process and waits for the drain to finish.
func (p *proc) term(t *testing.T, timeout time.Duration) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM %s: %v", p.name, err)
	}
	p.wait(t, timeout)
}

func getAssignments(t *testing.T, base string) clusterAssignments {
	t.Helper()
	resp, err := http.Get(base + "/v1/assignments")
	if err != nil {
		t.Fatalf("GET /v1/assignments: %v", err)
	}
	defer resp.Body.Close()
	var as clusterAssignments
	if err := json.NewDecoder(resp.Body).Decode(&as); err != nil {
		t.Fatalf("decode assignments: %v", err)
	}
	return as
}

// officeWorkerMap flattens an assignment snapshot to office → worker.
func officeWorkerMap(as clusterAssignments) map[string]string {
	m := make(map[string]string, len(as.Offices))
	for _, o := range as.Offices {
		m[o.Name] = o.Worker
	}
	return m
}

// feedEpoch advances every live feeder n ticks, partitions the window
// into per-worker JSONL bodies by the current assignment, POSTs each
// worker its share with ?flush=1&epoch=K — every worker, every epoch,
// empty bodies included, because the router's watermark needs one frame
// per source per epoch — and flushes the reference at the same point.
func feedEpoch(t *testing.T, h *harness, ref *reference, workerBase map[string]string,
	assign map[string]string, epoch uint64, n int) {
	t.Helper()
	bufs := make(map[string]*bytes.Buffer, len(workerBase))
	ticks := make(map[string]int, len(workerBase))
	inputs := make(map[string]int, len(workerBase))
	for w := range workerBase {
		bufs[w] = &bytes.Buffer{}
	}
	rssi := make([]float64, len(h.streams))
	for step := 0; step < n; step++ {
		for _, f := range h.feeders {
			w, ok := assign[f.name]
			if !ok {
				t.Fatalf("feeder %s has no worker assignment", f.name)
			}
			inputs[w] += h.emitOne(t, f, bufs[w], ref, rssi)
			ticks[w]++
		}
	}
	names := make([]string, 0, len(workerBase))
	for w := range workerBase {
		names = append(names, w)
	}
	sort.Strings(names)
	for _, w := range names {
		url := workerBase[w] + "/v1/ticks?flush=1&epoch=" + strconv.FormatUint(epoch, 10)
		resp, err := http.Post(url, "application/json", bytes.NewReader(bufs[w].Bytes()))
		if err != nil {
			t.Fatalf("POST ticks to %s: %v", w, err)
		}
		var res e2eIngestResult
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("%s ticks response %q: %v", w, body, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST ticks to %s = %d: %s", w, resp.StatusCode, res.Error)
		}
		if res.AcceptedTicks != ticks[w] || res.AcceptedInputs != inputs[w] || !res.Flushed {
			t.Fatalf("%s epoch %d ingest = %+v, want %d ticks, %d inputs, flushed",
				w, epoch, res, ticks[w], inputs[w])
		}
	}
	if err := ref.ing.Flush(); err != nil {
		t.Fatalf("reference flush: %v", err)
	}
}

func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and drives a three-node cluster; skipped in -short")
	}

	dir := t.TempDir()
	serveBin := buildBinary(t, dir, "fadewich-serve", "fadewich/cmd/fadewich-serve")
	tailBin := buildBinary(t, dir, "fadewich-tail", "fadewich/cmd/fadewich-tail")

	// A shorter day than the single-process e2e (the fleet is 3× wider):
	// 15 simulated minutes per day, two days.
	simCfg := sim.Config{Days: 2, Seed: e2eSeed, Layout: office.Paper(), Workers: 1}
	simCfg.Agent.DaySeconds = 900
	simCfg.Agent.MorningJitterSec = 90
	simCfg.Agent.DeparturesPerDay = 4
	simCfg.Agent.OutsideMeanSec = 120
	ds, err := sim.Generate(simCfg)
	if err != nil {
		t.Fatalf("sim.Generate: %v", err)
	}
	subset, err := ds.Layout.SensorSubset(e2eSensors)
	if err != nil {
		t.Fatalf("SensorSubset: %v", err)
	}
	src := rng.New(e2eSeed ^ 0xc1d5)
	h := &harness{ds: ds, streams: ds.StreamSubset(subset)}
	for day := range ds.Days {
		h.inputsByDay = append(h.inputsByDay, kma.GenerateInputs(
			ds.Days[day].InputSpans, ds.Days[day].Events, kma.InputModel{}, src.Split()))
	}

	defaults := serve.OfficeSpec{
		Layout:             "paper",
		Sensors:            e2eSensors,
		DT:                 ds.Days[0].DT,
		MinTrainingSamples: e2eMinTrain,
	}
	var offices []serve.OfficeSpec
	for i := 0; i < clusterFleet; i++ {
		offices = append(offices, serve.OfficeSpec{Name: fmt.Sprintf("o%02d", i)})
	}
	specPath := filepath.Join(dir, "fleet.json")
	rawV1 := specFile(t, specPath, serve.Spec{Defaults: defaults, Offices: offices})

	// The oracle: one single-process fleet of the full 48-office spec.
	ref, resolved := newReference(t, rawV1)
	defer ref.ing.Close()
	refID := make(map[string]int, len(resolved)) // office name → reference fleet ID (== gid)
	for i, ro := range resolved {
		refID[ro.Name] = i
		h.addFeeder(ro.Name, i)
	}

	// Topology: coordinator, router, two workers (w3 joins mid-run).
	coord := startProc(t, "coordinator", "fadewich-serve: listening on ", serveBin,
		"-mode", "coordinator", "-spec", specPath, "-workers", "w1,w2", "-listen", "127.0.0.1:0")
	coordBase := "http://" + coord.addr(t)

	router := startProc(t, "router", "fadewich-tail: routing on ", tailBin,
		"-route", "-listen", "127.0.0.1:0", "-expect", "3", "-format", "jsonl")
	routerAddr := router.addr(t)

	// Every worker compresses both its bytes-moved legs: the epoch-tagged
	// forward stream to the router and a local segment log. The router
	// inflates transparently, so the byte-identity assertion at the end
	// is unchanged — compression must be invisible to decoded output.
	startWorker := func(name string) *proc {
		return startProc(t, name, "fadewich-serve: listening on ", serveBin,
			"-mode", "worker", "-coordinator", coordBase, "-name", name,
			"-forward", routerAddr, "-listen", "127.0.0.1:0",
			"-parallel", "1", "-queue", strconv.Itoa(e2eQueue), "-codec", "1",
			"-compress", "-segments", filepath.Join(dir, "seg-"+name))
	}
	w1 := startWorker("w1")
	w2 := startWorker("w2")
	workerBase := map[string]string{
		"w1": "http://" + w1.addr(t),
		"w2": "http://" + w2.addr(t),
	}
	workerProc := map[string]*proc{"w1": w1, "w2": w2}

	// Generation 1: gids must be 0..47 in spec order — the identity
	// anchor with the reference fleet's IDs.
	asV1 := getAssignments(t, coordBase)
	if asV1.Generation != 1 || asV1.GIDsIssued != clusterFleet {
		t.Fatalf("initial assignments: generation %d, %d gids", asV1.Generation, asV1.GIDsIssued)
	}
	for i, o := range asV1.Offices {
		if o.GID != i {
			t.Fatalf("office %s gid %d, want %d", o.Name, o.GID, i)
		}
	}
	assign := officeWorkerMap(asV1)

	// Day 0: the whole fleet trains. Epochs number from 1 and keep
	// counting across days and the join.
	h.startDay(0)
	epoch := uint64(0)
	day0 := ds.Days[0].Ticks
	const window = 500
	for fed := 0; fed < day0; fed += window {
		n := window
		if day0-fed < n {
			n = day0 - fed
		}
		epoch++
		feedEpoch(t, h, ref, workerBase, assign, epoch, n)
	}

	// Take every office online: /v1/train on each worker (its queue is
	// empty — every dispatch was an epoch flush), mirrored by finishing
	// every reference office.
	trained := 0
	for _, w := range []string{"w1", "w2"} {
		resp, err := http.Post(workerBase[w]+"/v1/train", "application/json", nil)
		if err != nil {
			t.Fatalf("POST /v1/train to %s: %v", w, err)
		}
		var tr e2eTrainResult
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatalf("decode %s train: %v", w, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(tr.Errors) > 0 {
			t.Fatalf("/v1/train on %s = %d %+v", w, resp.StatusCode, tr)
		}
		trained += len(tr.Trained)
	}
	if trained != clusterFleet {
		t.Fatalf("workers trained %d offices, want %d", trained, clusterFleet)
	}
	if err := ref.ing.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := range resolved {
		if ref.fleet.System(i).Phase() == core.PhaseTraining {
			if err := ref.fleet.FinishTrainingOffice(i); err != nil {
				t.Fatalf("reference train office %d: %v", i, err)
			}
		}
	}

	// Day 1, first half: the online cluster raises real alerts.
	h.startDay(1)
	day1 := ds.Days[1].Ticks
	halfDay := day1 / 2
	for fed := 0; fed < halfDay; fed += window {
		n := window
		if halfDay-fed < n {
			n = halfDay - fed
		}
		epoch++
		feedEpoch(t, h, ref, workerBase, assign, epoch, n)
	}
	preJoin := ref.batchCount()
	if preJoin == 0 {
		t.Fatal("no action batches before the join; the cluster never came online")
	}

	// w3 joins. Order matters and is the documented operator procedure:
	// tell the coordinator first (so w3's shard fetch succeeds), start
	// w3 (its tagged sink dials the router inside serve.New, so the
	// router's watermark holds before any epoch can include it), then
	// reload the survivors so they drop the moved offices. Feeding is
	// paused throughout, so no epoch straddles the reshard.
	req, err := http.NewRequest(http.MethodPut, coordBase+"/v1/workers",
		bytes.NewReader([]byte(`{"workers":["w1","w2","w3"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT /v1/workers: %v", err)
	}
	var asV2 clusterAssignments
	if err := json.NewDecoder(resp.Body).Decode(&asV2); err != nil {
		t.Fatalf("decode join assignments: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || asV2.Generation != 2 {
		t.Fatalf("PUT /v1/workers = %d, generation %d", resp.StatusCode, asV2.Generation)
	}

	// Exactly the moved offices draw fresh gids, in spec order from 48.
	var moved []string
	nextGID := clusterFleet
	prevAssign := assign
	for i, o := range asV2.Offices {
		if o.Worker == prevAssign[o.Name] {
			if o.GID != asV1.Offices[i].GID {
				t.Fatalf("office %s did not move but its gid changed %d→%d", o.Name, asV1.Offices[i].GID, o.GID)
			}
			continue
		}
		if o.Worker != "w3" {
			t.Fatalf("office %s moved %s→%s; a join only moves offices onto the joiner",
				o.Name, prevAssign[o.Name], o.Worker)
		}
		if o.GID != nextGID {
			t.Fatalf("moved office %s gid %d, want fresh gid %d (spec order)", o.Name, o.GID, nextGID)
		}
		moved = append(moved, o.Name)
		nextGID++
	}
	if len(moved) == 0 {
		t.Fatal("no office moved to w3; the join resharded nothing")
	}
	t.Logf("join moves %d/%d offices to w3: %v", len(moved), clusterFleet, moved)

	w3 := startWorker("w3")
	workerBase["w3"] = "http://" + w3.addr(t)
	workerProc["w3"] = w3

	// Reload the survivors and wait until each converges on its gen-2
	// shard (the moved offices gone).
	for _, w := range []string{"w1", "w2"} {
		if err := workerProc[w].cmd.Process.Signal(syscall.SIGHUP); err != nil {
			t.Fatalf("SIGHUP %s: %v", w, err)
		}
	}
	wantCount := map[string]int{}
	for _, o := range asV2.Offices {
		wantCount[o.Worker]++
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, w := range []string{"w1", "w2", "w3"} {
		for {
			st := getStatus(t, workerBase[w])
			if st.GenerationLag == 0 && st.LiveOffices == wantCount[w] && st.LastReconcileError == "" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never converged on the gen-2 shard: %+v\nstderr:\n%s",
					w, st, workerProc[w].errOutput())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Mirror the reshard in the reference: the moved offices restart as
	// fresh Systems, so remove them all, then re-add in spec order — the
	// fresh reference IDs must land exactly on the fresh gids.
	removeIDs := make([]int, 0, len(moved))
	for _, name := range moved {
		removeIDs = append(removeIDs, refID[name])
	}
	sort.Ints(removeIDs)
	for _, id := range removeIDs {
		if _, err := ref.ing.RemoveOffice(id); err != nil {
			t.Fatalf("reference remove office %d: %v", id, err)
		}
	}
	cfgByName := make(map[string]core.Config, len(resolved))
	for _, ro := range resolved {
		cfgByName[ro.Name] = ro.Config
	}
	for _, name := range moved {
		id, err := ref.ing.AddOffice(cfgByName[name])
		if err != nil {
			t.Fatalf("reference re-add %s: %v", name, err)
		}
		wantGID := -1
		for _, o := range asV2.Offices {
			if o.Name == name {
				wantGID = o.GID
			}
		}
		if id != wantGID {
			t.Fatalf("reference re-added %s as id %d, coordinator issued gid %d — the identity anchor broke",
				name, id, wantGID)
		}
		refID[name] = id
		// The fresh System trains from the top of the dataset.
		h.removeFeeder(name)
		h.addFeeder(name, id)
	}
	assign = officeWorkerMap(asV2)

	// Day 1, second half: survivors continue mid-day; the moved offices
	// feed day-0 training data from tick 0 on their new node.
	for fed := halfDay; fed < day1; fed += window {
		n := window
		if day1-fed < n {
			n = day1 - fed
		}
		epoch++
		feedEpoch(t, h, ref, workerBase, assign, epoch, n)
	}
	if ref.batchCount() == preJoin {
		t.Fatal("no action batches after the join; the surviving offices went quiet")
	}

	// Drain: SIGTERM every worker — each sends its final tagged frame —
	// then the router completes on its own and exits 0.
	for _, w := range []string{"w1", "w2", "w3"} {
		workerProc[w].term(t, 30*time.Second)
	}
	router.wait(t, 30*time.Second)
	if !strings.Contains(router.errOutput(), "routed ") {
		t.Fatalf("router never printed its summary; stderr:\n%s", router.errOutput())
	}
	coord.term(t, 10*time.Second)

	// The byte-identity claim: the routed stream equals the reference
	// fleet's dispatch sequence, rendered in the same codec-v1 JSONL.
	ref.mu.Lock()
	batches := ref.batches
	ref.mu.Unlock()
	var want []byte
	actions := 0
	for _, b := range batches {
		want = wire.AppendJSONL(want, b)
		actions += len(b)
	}
	if actions == 0 {
		t.Fatal("reference produced no actions")
	}
	t.Logf("%d actions in %d batches over %d epochs", actions, len(batches), epoch)
	if got := router.stdout.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("routed stream diverged from the single-process reference: got %d bytes, want %d",
			len(got), len(want))
	}

	// The bytes-moved claim: with -compress on, the workers' wire frames
	// (forward stream + segment log) must shrink the traffic at least
	// 2.5× versus the logical (uncompressed-equivalent) frame bytes the
	// end-of-run stderr lines report — while the decoded output above
	// stayed byte-identical.
	var logical, wired uint64
	var segLogical uint64
	for _, w := range []string{"w1", "w2", "w3"} {
		for _, kind := range []string{"forward", "segments"} {
			frames, lb, wb := runStatLine(t, workerProc[w], kind)
			if frames == 0 || lb == 0 {
				t.Fatalf("%s reported no %s traffic: %d frames, %d logical bytes", w, kind, frames, lb)
			}
			if wb >= lb {
				t.Fatalf("%s %s: wire bytes %d >= logical bytes %d; compression never engaged", w, kind, wb, lb)
			}
			logical += lb
			wired += wb
			if kind == "segments" {
				segLogical += lb
			}
		}
	}
	ratio := float64(logical) / float64(wired)
	t.Logf("compression: %d logical bytes -> %d wire bytes (%.2fx)", logical, wired, ratio)
	if ratio < 2.5 {
		t.Fatalf("worker bytes-moved shrank only %.2fx (logical %d / wire %d), want >= 2.5x", ratio, logical, wired)
	}

	// On-disk proof for the segment legs: the directories really are
	// small, and still replay — the three logs together must hold every
	// dispatched action the reference produced.
	var diskBytes int64
	replayed := 0
	for _, w := range []string{"w1", "w2", "w3"} {
		segDir := filepath.Join(dir, "seg-"+w)
		entries, err := os.ReadDir(segDir)
		if err != nil {
			t.Fatalf("read %s segment dir: %v", w, err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".fwl") {
				continue
			}
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			diskBytes += info.Size()
		}
		r, err := segment.OpenDir(segDir, segment.Options{})
		if err != nil {
			t.Fatalf("open %s segment dir: %v", w, err)
		}
		for {
			batch, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("replay %s segment dir: %v", w, err)
			}
			replayed += len(batch)
		}
		r.Close()
	}
	if replayed != actions {
		t.Fatalf("worker segment logs replay %d actions, reference dispatched %d", replayed, actions)
	}
	diskRatio := float64(segLogical) / float64(diskBytes)
	t.Logf("segment dirs: %d logical bytes on %d disk bytes (%.2fx)", segLogical, diskBytes, diskRatio)
	if diskRatio < 2.5 {
		t.Fatalf("segment dirs shrank only %.2fx (logical %d / disk %d), want >= 2.5x", diskRatio, segLogical, diskBytes)
	}
}

// runStatLine finds the worker's end-of-run byte accounting on stderr:
// "fadewich-serve: KIND: N frames, N logical bytes, N wire bytes".
func runStatLine(t *testing.T, p *proc, kind string) (frames, logical, wire uint64) {
	t.Helper()
	prefix := "fadewich-serve: " + kind + ": "
	for _, line := range strings.Split(p.errOutput(), "\n") {
		rest, ok := strings.CutPrefix(line, prefix)
		if !ok {
			continue
		}
		if _, err := fmt.Sscanf(rest, "%d frames, %d logical bytes, %d wire bytes", &frames, &logical, &wire); err != nil {
			t.Fatalf("%s stat line %q: %v", p.name, line, err)
		}
		return frames, logical, wire
	}
	t.Fatalf("%s never printed its %q run stats; stderr:\n%s", p.name, kind, p.errOutput())
	return 0, 0, 0
}
