// End-to-end test of the fadewich-serve binary: it builds the real
// daemon (and fadewich-tail), drives a 16-office fleet through a full
// simulated day of training, takes it online, streams a second day of
// ticks while capturing /v1/actions, rolls the spec (add 2 offices,
// remove 1, retune one office's MD threshold) via SIGHUP, and finally
// drains with SIGTERM.
//
// The oracle is a synchronous in-process reference: an identical
// engine.Fleet + stream.Ingestor fed the exact same Push/PushInput
// sequence, with every reconcile op mirrored in the documented apply
// order. Because tick batching is flush-driven and office IDs assign
// deterministically, the daemon's action stream must be byte-identical
// to the reference's — both the live /v1/actions wire frames and the
// sealed segment log replayed through fadewich-tail.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/kma"
	"fadewich/internal/office"
	"fadewich/internal/rng"
	"fadewich/internal/serve"
	"fadewich/internal/sim"
	"fadewich/internal/stream"
	"fadewich/internal/wire"
)

// Sim sizing: a 30-minute day at 0.2 s per tick is 9000 ticks — small
// enough to feed over HTTP in seconds, busy enough that every office
// collects ~17 labelled training samples on day 0 and raises real
// alerts on day 1.
const (
	e2eSeed      = 21
	e2eDaySec    = 1800
	e2eSensors   = 4
	e2eMinTrain  = 3
	e2eQueue     = 4096
	initialFleet = 16
)

// API response shapes (mirrors of internal/serve's JSON contracts).
type e2eIngestResult struct {
	AcceptedTicks  int    `json:"accepted_ticks"`
	AcceptedInputs int    `json:"accepted_inputs"`
	Flushed        bool   `json:"flushed"`
	Error          string `json:"error"`
}

type e2eTrainResult struct {
	Trained []string `json:"trained"`
	Online  int      `json:"online"`
	Errors  []string `json:"errors"`
}

type e2eOfficeStatus struct {
	Name               string `json:"name"`
	ID                 int    `json:"id"`
	Phase              string `json:"phase"`
	ObservedGeneration uint64 `json:"observed_generation"`
}

type e2eFleetStatus struct {
	SpecGeneration     uint64            `json:"spec_generation"`
	GenerationLag      uint64            `json:"generation_lag"`
	DesiredOffices     int               `json:"desired_offices"`
	LiveOffices        int               `json:"live_offices"`
	LastReconcileError string            `json:"last_reconcile_error"`
	Offices            []e2eOfficeStatus `json:"offices"`
}

// reference is the synchronous oracle: the same fleet + ingestor
// construction as the daemon, collecting every dispatched batch.
type reference struct {
	fleet *engine.Fleet
	ing   *stream.Ingestor

	mu      sync.Mutex
	batches [][]engine.OfficeAction
}

func newReference(t *testing.T, raw []byte) (*reference, []serve.ResolvedOffice) {
	t.Helper()
	spec, err := serve.ParseSpec(raw)
	if err != nil {
		t.Fatalf("parse spec: %v", err)
	}
	resolved, err := spec.Resolve()
	if err != nil {
		t.Fatalf("resolve spec: %v", err)
	}
	perOffice := make(map[int]core.Config, len(resolved))
	for i, ro := range resolved {
		perOffice[i] = ro.Config
	}
	fleet, err := engine.NewFleet(engine.FleetConfig{
		Offices:   len(resolved),
		System:    resolved[0].Config,
		PerOffice: perOffice,
		Workers:   1,
	})
	if err != nil {
		t.Fatalf("reference fleet: %v", err)
	}
	ref := &reference{fleet: fleet}
	ref.ing, err = stream.NewIngestor(fleet, stream.Config{
		Queue: e2eQueue,
		OnBatch: func(batch []engine.OfficeAction) {
			cp := make([]engine.OfficeAction, len(batch))
			copy(cp, batch)
			ref.mu.Lock()
			ref.batches = append(ref.batches, cp)
			ref.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("reference ingestor: %v", err)
	}
	return ref, resolved
}

func (r *reference) batchCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.batches)
}

// feeder walks one office through the shared dataset: its own tick
// cursor into a day trace plus per-workstation input cursors, so
// offices added mid-test simply start the dataset from the top.
type feeder struct {
	name string
	id   int
	day  int
	tick int
	cur  []int
}

// harness owns everything both sides consume: the dataset, the
// per-day keystroke/mouse input times and the live feeder set.
type harness struct {
	ds          *sim.Dataset
	streams     []int // dataset stream indices of the sensor subset
	inputsByDay [][][]float64
	feeders     []*feeder
}

func (h *harness) addFeeder(name string, id int) {
	h.feeders = append(h.feeders, &feeder{
		name: name,
		id:   id,
		cur:  make([]int, len(h.inputsByDay[0])),
	})
	sort.Slice(h.feeders, func(i, j int) bool { return h.feeders[i].id < h.feeders[j].id })
}

func (h *harness) removeFeeder(name string) {
	for i, f := range h.feeders {
		if f.name == name {
			h.feeders = append(h.feeders[:i], h.feeders[i+1:]...)
			return
		}
	}
}

// startDay moves every current feeder to the given day, tick 0.
func (h *harness) startDay(day int) {
	for _, f := range h.feeders {
		f.day = day
		f.tick = 0
		for ws := range f.cur {
			f.cur[ws] = 0
		}
	}
}

// emitOne appends one office-tick to the JSONL window — input lines
// first (the events due by this tick, exactly like the simulators'
// replay loops), then the RSSI line — and mirrors both into the
// reference ingestor. Returns the number of input lines emitted.
func (h *harness) emitOne(t *testing.T, f *feeder, buf *bytes.Buffer, ref *reference, rssi []float64) int {
	t.Helper()
	trace := h.ds.Days[f.day]
	inputs := h.inputsByDay[f.day]
	due := float64(f.tick+1) * trace.DT
	emitted := 0
	for ws := range inputs {
		for f.cur[ws] < len(inputs[ws]) && inputs[ws][f.cur[ws]] <= due {
			fmt.Fprintf(buf, "{\"office\":%q,\"input\":%d}\n", f.name, ws)
			if err := ref.ing.PushInput(f.id, ws); err != nil {
				t.Fatalf("reference PushInput(%s, %d): %v", f.name, ws, err)
			}
			f.cur[ws]++
			emitted++
		}
	}
	buf.WriteString("{\"office\":\"")
	buf.WriteString(f.name)
	buf.WriteString("\",\"rssi\":[")
	for j, k := range h.streams {
		if j > 0 {
			buf.WriteByte(',')
		}
		rssi[j] = float64(trace.Streams[k][f.tick])
		buf.Write(strconv.AppendFloat(nil, rssi[j], 'g', -1, 64))
	}
	buf.WriteString("]}\n")
	if err := ref.ing.Push(f.id, rssi); err != nil {
		t.Fatalf("reference Push(%s): %v", f.name, err)
	}
	f.tick++
	return emitted
}

// feedWindow advances every live feeder n ticks, POSTs the window to
// the daemon with ?flush=1 and flushes the reference at the same
// point, keeping both dispatch sequences identical.
func (h *harness) feedWindow(t *testing.T, base string, ref *reference, n int) {
	t.Helper()
	var buf bytes.Buffer
	rssi := make([]float64, len(h.streams))
	wantInputs := 0
	for step := 0; step < n; step++ {
		for _, f := range h.feeders {
			wantInputs += h.emitOne(t, f, &buf, ref, rssi)
		}
	}
	resp, err := http.Post(base+"/v1/ticks?flush=1", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("POST /v1/ticks: %v", err)
	}
	var res e2eIngestResult
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("ticks response %q: %v", body, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/ticks = %d: %s", resp.StatusCode, res.Error)
	}
	if want := n * len(h.feeders); res.AcceptedTicks != want || res.AcceptedInputs != wantInputs || !res.Flushed {
		t.Fatalf("ingest result = %+v, want %d ticks, %d inputs, flushed", res, want, wantInputs)
	}
	if err := ref.ing.Flush(); err != nil {
		t.Fatalf("reference flush: %v", err)
	}
}

// buildBinary compiles a command of this module into dir.
func buildBinary(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// specFile marshals a fleet spec and writes it to path.
func specFile(t *testing.T, path string, spec serve.Spec) []byte {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write spec: %v", err)
	}
	return raw
}

func getStatus(t *testing.T, base string) e2eFleetStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/offices")
	if err != nil {
		t.Fatalf("GET /v1/offices: %v", err)
	}
	defer resp.Body.Close()
	var st e2eFleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /v1/offices: %v", err)
	}
	return st
}

func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and feeds two simulated days; skipped in -short")
	}

	dir := t.TempDir()
	serveBin := buildBinary(t, dir, "fadewich-serve", "fadewich/cmd/fadewich-serve")
	tailBin := buildBinary(t, dir, "fadewich-tail", "fadewich/cmd/fadewich-tail")
	segDir := filepath.Join(dir, "segments")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// One shared dataset: every office is a copy of the same deployment,
	// so one generation pass feeds the whole fleet.
	simCfg := sim.Config{Days: 2, Seed: e2eSeed, Layout: office.Paper(), Workers: 1}
	simCfg.Agent.DaySeconds = e2eDaySec
	simCfg.Agent.MorningJitterSec = 120
	simCfg.Agent.DeparturesPerDay = 6
	simCfg.Agent.OutsideMeanSec = 150
	ds, err := sim.Generate(simCfg)
	if err != nil {
		t.Fatalf("sim.Generate: %v", err)
	}
	subset, err := ds.Layout.SensorSubset(e2eSensors)
	if err != nil {
		t.Fatalf("SensorSubset: %v", err)
	}
	src := rng.New(e2eSeed ^ 0xfade)
	h := &harness{ds: ds, streams: ds.StreamSubset(subset)}
	for day := range ds.Days {
		h.inputsByDay = append(h.inputsByDay, kma.GenerateInputs(
			ds.Days[day].InputSpans, ds.Days[day].Events, kma.InputModel{}, src.Split()))
	}

	// Spec v1: sixteen identical offices o00..o15.
	defaults := serve.OfficeSpec{
		Layout:             "paper",
		Sensors:            e2eSensors,
		DT:                 ds.Days[0].DT,
		MinTrainingSamples: e2eMinTrain,
	}
	var offices []serve.OfficeSpec
	for i := 0; i < initialFleet; i++ {
		offices = append(offices, serve.OfficeSpec{Name: fmt.Sprintf("o%02d", i)})
	}
	specPath := filepath.Join(dir, "fleet.json")
	rawV1 := specFile(t, specPath, serve.Spec{Defaults: defaults, Offices: offices})

	ref, resolved := newReference(t, rawV1)
	defer ref.ing.Close()
	live := make([]serve.LiveOffice, len(resolved))
	for i, ro := range resolved {
		live[i] = serve.LiveOffice{Name: ro.Name, ID: i, Config: ro.Config, GID: ro.GID}
		h.addFeeder(ro.Name, i)
	}

	// Start the daemon on an ephemeral port; its construction must match
	// the reference (flush-driven, one worker).
	cmd := exec.Command(serveBin,
		"-spec", specPath,
		"-listen", "127.0.0.1:0",
		"-segments", segDir,
		"-codec", "1",
		"-parallel", "1",
		"-queue", strconv.Itoa(e2eQueue),
	)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	started := false
	defer func() {
		if !started {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	var stderrBuf bytes.Buffer
	var stderrMu sync.Mutex
	addrCh := make(chan string, 1)
	stderrDone := make(chan struct{})
	go func() {
		defer close(stderrDone)
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			stderrMu.Lock()
			stderrBuf.WriteString(line)
			stderrBuf.WriteByte('\n')
			stderrMu.Unlock()
			if addr, ok := strings.CutPrefix(line, "fadewich-serve: listening on "); ok {
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	daemonStderr := func() string {
		stderrMu.Lock()
		defer stderrMu.Unlock()
		return stderrBuf.String()
	}

	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never reported its address; stderr:\n%s", daemonStderr())
	}
	t.Logf("daemon at %s", base)

	// Subscribe to the live action stream before the first tick: the
	// handler commits headers before streaming, so once Get returns the
	// subscription is active and no frame can be missed.
	streamResp, err := http.Get(base + "/v1/actions?codec=1")
	if err != nil {
		t.Fatalf("GET /v1/actions: %v", err)
	}
	if streamResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/actions = %d", streamResp.StatusCode)
	}
	streamCh := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(streamResp.Body)
		streamResp.Body.Close()
		streamCh <- b
	}()

	// Day 0: the whole fleet trains on a full day of ticks.
	h.startDay(0)
	day0 := ds.Days[0].Ticks
	const window = 600
	for fed := 0; fed < day0; fed += window {
		n := window
		if day0-fed < n {
			n = day0 - fed
		}
		h.feedWindow(t, base, ref, n)
	}

	// Take every office online, mirroring handleTrain's flush + asc-ID
	// FinishTrainingOffice sweep.
	resp, err := http.Post(base+"/v1/train", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /v1/train: %v", err)
	}
	var tr e2eTrainResult
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("decode /v1/train: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(tr.Trained) != initialFleet || tr.Online != initialFleet {
		t.Fatalf("/v1/train = %d %+v, want all %d offices trained", resp.StatusCode, tr, initialFleet)
	}
	if err := ref.ing.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, lo := range live {
		if ref.fleet.System(lo.ID).Phase() == core.PhaseTraining {
			if err := ref.fleet.FinishTrainingOffice(lo.ID); err != nil {
				t.Fatalf("reference train %s: %v", lo.Name, err)
			}
		}
	}

	// Day 1, first half: the online fleet raises real alerts.
	h.startDay(1)
	halfDay := ds.Days[1].Ticks / 2
	for fed := 0; fed < halfDay; fed += 500 {
		n := 500
		if halfDay-fed < n {
			n = halfDay - fed
		}
		h.feedWindow(t, base, ref, n)
	}
	preRolloutBatches := ref.batchCount()
	if preRolloutBatches == 0 {
		t.Fatal("no action batches before the rollout; the fleet never came online")
	}

	// Spec v2: remove o05, retune o03's MD threshold (a config rollout
	// that restarts it under a fresh ID) and add o16, o17.
	var officesV2 []serve.OfficeSpec
	for _, o := range offices {
		switch o.Name {
		case "o05":
		case "o03":
			o.MDTau = 9.5
			officesV2 = append(officesV2, o)
		default:
			officesV2 = append(officesV2, o)
		}
	}
	officesV2 = append(officesV2,
		serve.OfficeSpec{Name: "o16"}, serve.OfficeSpec{Name: "o17"})
	rawV2 := specFile(t, specPath, serve.Spec{Defaults: defaults, Offices: officesV2})

	// Mirror the reconcile in the documented apply order: Removes
	// ascending by live ID, then Updates in spec order (remove + fresh
	// add), then Adds in spec order.
	specV2, err := serve.ParseSpec(rawV2)
	if err != nil {
		t.Fatal(err)
	}
	desired, err := specV2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	diff := serve.ComputeDiff(desired, live)
	if len(diff.Removes) != 1 || len(diff.Updates) != 1 || len(diff.Adds) != 2 {
		t.Fatalf("diff = %d removes / %d updates / %d adds, want 1/1/2",
			len(diff.Removes), len(diff.Updates), len(diff.Adds))
	}
	for _, r := range diff.Removes {
		if _, err := ref.ing.RemoveOffice(r.ID); err != nil {
			t.Fatalf("reference remove %s: %v", r.Name, err)
		}
		h.removeFeeder(r.Name)
		for i, lo := range live {
			if lo.ID == r.ID {
				live = append(live[:i], live[i+1:]...)
				break
			}
		}
	}
	for _, u := range diff.Updates {
		if _, err := ref.ing.RemoveOffice(u.Old.ID); err != nil {
			t.Fatalf("reference update-remove %s: %v", u.Old.Name, err)
		}
		id, err := ref.ing.AddOffice(u.New.Config)
		if err != nil {
			t.Fatalf("reference update-add %s: %v", u.New.Name, err)
		}
		h.removeFeeder(u.Old.Name)
		h.addFeeder(u.New.Name, id)
		for i, lo := range live {
			if lo.Name == u.Old.Name {
				live[i] = serve.LiveOffice{Name: u.New.Name, ID: id, Config: u.New.Config, GID: u.New.GID}
				break
			}
		}
	}
	for _, a := range diff.Adds {
		id, err := ref.ing.AddOffice(a.Config)
		if err != nil {
			t.Fatalf("reference add %s: %v", a.Name, err)
		}
		h.addFeeder(a.Name, id)
		live = append(live, serve.LiveOffice{Name: a.Name, ID: id, Config: a.Config, GID: a.GID})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	// IDs are a monotonic counter: 0..15 existed, so the o03 rollout
	// lands on 16 and the two adds on 17 and 18.
	for _, want := range []struct {
		name string
		id   int
	}{{"o03", 16}, {"o16", 17}, {"o17", 18}} {
		found := false
		for _, lo := range live {
			if lo.Name == want.name && lo.ID == want.id {
				found = true
			}
		}
		if !found {
			t.Fatalf("reference did not assign %s id %d: %+v", want.name, want.id, live)
		}
	}

	// SIGHUP the daemon and wait for /v1/offices to converge on the
	// same membership, in the same ascending-ID order.
	if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatalf("SIGHUP: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	var st e2eFleetStatus
	for {
		st = getStatus(t, base)
		if st.SpecGeneration == 2 && st.GenerationLag == 0 && st.LiveOffices == len(live) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reconcile never converged: %+v\nstderr:\n%s", st, daemonStderr())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.DesiredOffices != len(live) || st.LastReconcileError != "" {
		t.Fatalf("converged status = %+v", st)
	}
	if len(st.Offices) != len(live) {
		t.Fatalf("daemon reports %d offices, want %d", len(st.Offices), len(live))
	}
	for i, o := range st.Offices {
		if o.Name != live[i].Name || o.ID != live[i].ID {
			t.Fatalf("office row %d = %s/%d, want %s/%d (ordering broken)",
				i, o.Name, o.ID, live[i].Name, live[i].ID)
		}
		if o.ObservedGeneration != 2 {
			t.Fatalf("office %s observed generation %d, want 2", o.Name, o.ObservedGeneration)
		}
		wantPhase := "online"
		switch o.Name {
		case "o03", "o16", "o17":
			wantPhase = "training" // fresh Systems after the rollout
		}
		if o.Phase != wantPhase {
			t.Fatalf("office %s phase %q, want %q", o.Name, o.Phase, wantPhase)
		}
	}

	// Day 1, second half: survivors continue mid-day; the rollout's
	// fresh offices start the dataset from day 0 and train quietly.
	for _, f := range h.feeders {
		if f.id >= initialFleet {
			f.day = 0
			f.tick = 0
			for ws := range f.cur {
				f.cur[ws] = 0
			}
		}
	}
	for fed := halfDay; fed < ds.Days[1].Ticks; fed += 500 {
		n := 500
		if ds.Days[1].Ticks-fed < n {
			n = ds.Days[1].Ticks - fed
		}
		h.feedWindow(t, base, ref, n)
	}
	if ref.batchCount() == preRolloutBatches {
		t.Fatal("no action batches after the rollout; the surviving offices went quiet")
	}

	// Drain: SIGTERM dispatches queued ticks, flushes the sinks, seals
	// the active segment and completes the /v1/actions stream.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	// Read the stderr pipe to EOF before reaping: Wait closes the pipe,
	// and a concurrent Wait can discard the drain lines still in flight.
	select {
	case <-stderrDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", daemonStderr())
	}
	started = true
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v\nstderr:\n%s", err, daemonStderr())
	}
	if !strings.Contains(daemonStderr(), "draining") {
		t.Fatalf("daemon never reported draining; stderr:\n%s", daemonStderr())
	}

	// The live stream must be byte-identical to the reference batches
	// framed with the same codec.
	got := <-streamCh
	ref.mu.Lock()
	batches := ref.batches
	ref.mu.Unlock()
	var wantFrames []byte
	var wantJSONL []byte
	actions := 0
	for _, b := range batches {
		wantFrames, err = wire.AppendFrame(wantFrames, wire.V1JSONL, b)
		if err != nil {
			t.Fatal(err)
		}
		wantJSONL = wire.AppendJSONL(wantJSONL, b)
		actions += len(b)
	}
	t.Logf("%d actions in %d batches, %d stream bytes", actions, len(batches), len(wantFrames))
	if actions == 0 {
		t.Fatal("reference produced no actions")
	}
	if !bytes.Equal(got, wantFrames) {
		t.Fatalf("/v1/actions stream diverged from the reference: got %d bytes, want %d",
			len(got), len(wantFrames))
	}

	// The sealed segment dir must replay to the same actions through
	// the real fadewich-tail binary, byte-exact in codec-v1 JSONL.
	tailCmd := exec.Command(tailBin, "-format", "jsonl", segDir)
	var tailOut, tailErr bytes.Buffer
	tailCmd.Stdout = &tailOut
	tailCmd.Stderr = &tailErr
	if err := tailCmd.Run(); err != nil {
		t.Fatalf("fadewich-tail: %v\n%s", err, tailErr.String())
	}
	if !bytes.Equal(tailOut.Bytes(), wantJSONL) {
		t.Fatalf("segment replay diverged from the reference: got %d bytes, want %d",
			tailOut.Len(), len(wantJSONL))
	}
}
