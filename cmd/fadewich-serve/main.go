// Command fadewich-serve is the reconciling control-plane daemon: it
// hosts a live fleet behind an HTTP API and drives fleet membership
// declaratively from a JSON fleet-spec file.
//
// The spec file (-spec) lists the desired offices — the same
// layout/sensors/MD schema as fadewich-sim -office-config, plus a
// required stable "name" per office. A reconcile loop diffs that
// desired state against live membership and applies adds, removes and
// config rollouts at batch boundaries. The spec is re-read on SIGHUP,
// on POST /v1/reload, and (with -watch) whenever the file changes.
//
// The HTTP surface:
//
//	POST /v1/ticks    ingest tick JSONL ({"office":NAME,"rssi":[...]}
//	                  or {"office":NAME,"input":WS}), bare or wrapped
//	                  in CRC-checked wire frames
//	                  (Content-Type: application/x-fadewich-frames);
//	                  ?flush=1 dispatches the queued ticks immediately,
//	                  ?flush=1&epoch=K stamps the dispatch with a
//	                  cluster epoch (worker mode)
//	GET  /v1/actions  chunked wire-frame stream of every dispatched
//	                  action batch (?codec=1 JSONL, ?codec=2 binary)
//	GET  /v1/offices  per-office status: phase, training samples,
//	                  observed spec generation, queue counters
//	POST /v1/train    move every training-phase office online
//	POST /v1/reload   re-read the spec source and reconcile
//	GET  /metrics     Prometheus text exposition, dependency-free
//
// Actions can additionally be persisted to a rotating segment log
// (-segments, replayable with fadewich-tail) and forwarded over TCP
// (-forward, the feed for fadewich-tail -listen). On SIGINT/SIGTERM
// the daemon drains: queued ticks are dispatched, sinks flushed, the
// active segment sealed.
//
// Beyond the default single-process mode, -mode selects the two
// cluster roles (see docs/DEPLOYMENT.md for the full topology):
//
//   - -mode coordinator shards the -spec offices onto the named
//     -workers with a consistent-hash ring and serves each worker its
//     gid-stamped sub-spec (GET /v1/shard/{worker}); the worker set
//     changes with PUT /v1/workers, the spec with POST /v1/reload.
//   - -mode worker fetches its sub-spec from -coordinator, runs an
//     ordinary fleet over it, and forwards epoch-tagged wire frames to
//     the stream router at -forward. Worker dispatch must be strictly
//     flush-driven (?flush=1&epoch=K), so the batching flags are
//     rejected.
//
// Usage:
//
//	fadewich-serve -spec fleet.json [-listen ADDR] [-watch 2s]
//	               [-segments DIR] [-forward ADDR] [-codec 1|2]
//	               [-queue N] [-on-full block|drop-oldest|error]
//	               [-batch-ticks N] [-max-latency D] [-parallel N]
//	fadewich-serve -mode coordinator -spec fleet.json -workers w1,w2
//	               [-replicas N] [-listen ADDR]
//	fadewich-serve -mode worker -coordinator URL -name w1
//	               -forward ROUTER [-listen ADDR] [...]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fadewich/internal/cluster"
	"fadewich/internal/prof"
	"fadewich/internal/segment"
	"fadewich/internal/serve"
	"fadewich/internal/stream"
	"fadewich/internal/vmath"
	"fadewich/internal/wire"
)

func main() {
	mode := flag.String("mode", "serve", "role: serve (single-process fleet), coordinator (shard a spec onto workers) or worker (run a coordinator-assigned shard)")
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port; the bound address is printed to stderr)")
	specPath := flag.String("spec", "", "JSON fleet-spec file with the desired offices (serve and coordinator modes)")
	watch := flag.Duration("watch", 0, "poll the spec source at this interval and reconcile when it changes (0 = only SIGHUP and /v1/reload)")
	queue := flag.Int("queue", 0, "per-office tick queue capacity (0 = default 256)")
	onFull := flag.String("on-full", "block", "backpressure policy when a queue is full: block, drop-oldest or error")
	batchTicks := flag.Int("batch-ticks", 0, "dispatch when an office has this many ticks queued (0 = flush/latency-driven only)")
	adaptive := flag.Bool("adaptive-batch", false, "scale the dispatch threshold with queue pressure (needs -batch-ticks)")
	maxLatency := flag.Duration("max-latency", 0, "dispatch queued ticks at most this long after they arrive (0 = off)")
	parallel := flag.Int("parallel", 0, "fleet worker pool width (0 = one per CPU)")
	segDir := flag.String("segments", "", "persist the action stream to a rotating segment log in this directory")
	segMaxBytes := flag.Int64("segment-max-bytes", 0, "rotate segments at this size (0 = library default)")
	segMaxAge := flag.Duration("segment-max-age", 0, "rotate segments at this age (0 = size-only)")
	fsync := flag.String("fsync", "rotate", "segment log durability: never, rotate or always")
	codec := flag.Int("codec", 1, "wire codec of the segment log and the TCP forward: 1 = JSONL, 2 = compact binary")
	compress := flag.Bool("compress", false, "deflate frame bodies on the segment log and the TCP forward (decoded output is byte-identical)")
	compactAfter := flag.Duration("compact-after", 0, "rewrite sealed segments older than this into compressed frames (0 = off; needs -segments)")
	retention := flag.Duration("retention", 0, "delete sealed segments older than this TTL (0 = keep forever; needs -segments)")
	replicate := flag.String("replicate", "", "ship sealed segments to this directory before retention prunes them (needs -segments)")
	maintainEvery := flag.Duration("maintain-every", 0, "segment maintenance pass interval (0 = default 1m; only with -compact-after, -retention or -replicate)")
	forward := flag.String("forward", "", "also stream dispatched batches to this TCP address as wire frames (worker mode: the stream router, required)")
	coordinator := flag.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:9300 (worker mode)")
	name := flag.String("name", "", "this worker's name in the coordinator's worker set (worker mode)")
	workers := flag.String("workers", "", "comma-separated initial worker names (coordinator mode)")
	replicas := flag.Int("replicas", 0, "consistent-hash ring points per worker (coordinator mode; 0 = 128)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile to this file at exit")
	flag.Parse()

	// Name the active vmath kernel path once at startup: when a perf
	// report or a golden mismatch comes in, the first question is which
	// dispatch table the process was running.
	fmt.Fprintf(os.Stderr, "fadewich-serve: vmath kernels: %s\n", vmath.ActivePath())

	stopProf, err := prof.Start(prof.Flags{CPU: *cpuProfile, Mem: *memProfile, Mutex: *mutexProfile})
	if err == nil {
		err = run(options{
			mode:          *mode,
			listen:        *listen,
			specPath:      *specPath,
			watch:         *watch,
			queue:         *queue,
			onFull:        *onFull,
			batchTicks:    *batchTicks,
			adaptive:      *adaptive,
			maxLatency:    *maxLatency,
			parallel:      *parallel,
			segDir:        *segDir,
			segMaxBytes:   *segMaxBytes,
			segMaxAge:     *segMaxAge,
			fsync:         *fsync,
			codec:         *codec,
			compress:      *compress,
			compactAfter:  *compactAfter,
			retention:     *retention,
			replicate:     *replicate,
			maintainEvery: *maintainEvery,
			forward:       *forward,
			coordinator:   *coordinator,
			name:          *name,
			workers:       *workers,
			replicas:      *replicas,
		})
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fadewich-serve: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	mode          string
	listen        string
	specPath      string
	watch         time.Duration
	queue         int
	onFull        string
	batchTicks    int
	adaptive      bool
	maxLatency    time.Duration
	parallel      int
	segDir        string
	segMaxBytes   int64
	segMaxAge     time.Duration
	fsync         string
	codec         int
	compress      bool
	compactAfter  time.Duration
	retention     time.Duration
	replicate     string
	maintainEvery time.Duration
	forward       string
	coordinator   string
	name          string
	workers       string
	replicas      int
}

func run(opt options) error {
	switch opt.mode {
	case "serve":
		return runServe(opt)
	case "coordinator":
		return runCoordinator(opt)
	case "worker":
		return runWorker(opt)
	default:
		return fmt.Errorf("unknown -mode %q (want serve, coordinator or worker)", opt.mode)
	}
}

// baseConfig translates the flags every fleet-hosting mode shares.
func baseConfig(opt options) (serve.Config, error) {
	if opt.codec != 1 && opt.codec != 2 {
		return serve.Config{}, fmt.Errorf("unknown wire codec %d (want 1 or 2)", opt.codec)
	}
	policy, err := stream.ParsePolicy(opt.onFull)
	if err != nil {
		return serve.Config{}, err
	}
	fsyncPolicy, err := segment.ParseFsyncPolicy(opt.fsync)
	if err != nil {
		return serve.Config{}, err
	}
	return serve.Config{
		Queue:           opt.queue,
		OnFull:          policy,
		BatchTicks:      opt.batchTicks,
		AdaptiveBatch:   opt.adaptive,
		MaxBatchLatency: opt.maxLatency,
		Workers:         opt.parallel,
		SegmentDir:      opt.segDir,
		SegmentMaxBytes: opt.segMaxBytes,
		SegmentMaxAge:   opt.segMaxAge,
		Fsync:           fsyncPolicy,
		Codec:           wire.Version(opt.codec),
		Compress:        opt.compress,
		CompactAfter:    opt.compactAfter,
		Retention:       opt.retention,
		Replicate:       opt.replicate,
		MaintainEvery:   opt.maintainEvery,
		Forward:         opt.forward,
	}, nil
}

// runServe is the classic single-process mode.
func runServe(opt options) error {
	if opt.specPath == "" {
		return errors.New("-spec is required")
	}
	if opt.coordinator != "" || opt.name != "" || opt.workers != "" {
		return errors.New("-coordinator, -name and -workers need -mode worker or coordinator")
	}
	cfg, err := baseConfig(opt)
	if err != nil {
		return err
	}
	cfg.SpecPath = opt.specPath
	return serveFleet(opt, cfg, true)
}

// runWorker runs a coordinator-assigned shard: the spec comes from the
// coordinator's shard endpoint, and every dispatched batch leaves as an
// epoch-tagged wire frame carrying this worker's source ID.
func runWorker(opt options) error {
	if opt.coordinator == "" || opt.name == "" {
		return errors.New("worker mode needs -coordinator and -name")
	}
	if opt.specPath != "" {
		return errors.New("worker mode takes its spec from the coordinator, not -spec")
	}
	if opt.forward == "" {
		return errors.New("worker mode needs -forward (the stream router's listen address)")
	}
	if opt.batchTicks != 0 || opt.adaptive || opt.maxLatency != 0 {
		return errors.New("worker dispatch is driven by ?flush=1&epoch=K; -batch-ticks, -adaptive-batch and -max-latency do not apply")
	}
	first, err := cluster.FetchShard(nil, opt.coordinator, opt.name)
	if err != nil {
		return err
	}
	source := first.Source
	cfg, err := baseConfig(opt)
	if err != nil {
		return err
	}
	cfg.ForwardSource = source
	// The hash may currently owe this worker nothing — an empty shard
	// still runs, emitting its per-epoch watermark frames.
	cfg.AllowEmpty = true
	cfg.SpecSource = func() ([]byte, error) {
		ss, err := cluster.FetchShard(nil, opt.coordinator, opt.name)
		if err != nil {
			return nil, err
		}
		if ss.Source != source {
			return nil, fmt.Errorf("coordinator now reports source %d for %s (was %d) — was the coordinator restarted? restart this worker too", ss.Source, opt.name, source)
		}
		return ss.Spec, nil
	}
	return serveFleet(opt, cfg, false)
}

// serveFleet hosts a serve.Server (single-process or worker shard)
// until SIGINT/SIGTERM, draining on the way out.
func serveFleet(opt options, cfg serve.Config, specIsFile bool) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", opt.listen)
	if err != nil {
		srv.Close()
		return err
	}
	// The bound address line is machine-read by the e2e harness (and by
	// humans with -listen :0), so its shape is load-bearing.
	fmt.Fprintf(os.Stderr, "fadewich-serve: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "fadewich-serve: reload: %v\n", err)
			} else {
				fmt.Fprintln(os.Stderr, "fadewich-serve: spec reloaded")
			}
		}
	}()

	if opt.watch > 0 {
		if specIsFile {
			go watchSpec(opt.specPath, opt.watch, srv)
		} else {
			// No file to stat in worker mode: poll the coordinator. The
			// reconciler's content hash makes an unchanged sub-spec a
			// no-op.
			go func() {
				for range time.Tick(opt.watch) {
					if err := srv.Reload(); err != nil {
						fmt.Fprintf(os.Stderr, "fadewich-serve: watch reload: %v\n", err)
					}
				}
			}()
		}
	}

	// On SIGINT/SIGTERM, drain before stopping the listener: Close
	// dispatches queued ticks, flushes and closes the sinks (sealing
	// the active segment, and in worker mode sending the final tagged
	// frame) and completes the /v1/actions streams, which lets
	// Shutdown's wait for active connections finish.
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		sig := <-term
		fmt.Fprintf(os.Stderr, "fadewich-serve: %v: draining\n", sig)
		err := srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if serr := httpSrv.Shutdown(ctx); serr != nil && err == nil {
			err = serr
		}
		done <- err
	}()

	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		srv.Close()
		return err
	}
	err = <-done
	printRunStats(srv)
	return err
}

// printRunStats reports the end-of-run byte movement on stderr. The
// "N logical bytes, M wire bytes" shape is machine-read by the e2e
// harness to assert compression ratios, so it is load-bearing.
func printRunStats(srv *serve.Server) {
	if fwd := srv.Forwarder(); fwd != nil {
		st := fwd.Stats()
		fmt.Fprintf(os.Stderr, "fadewich-serve: forward: %d frames, %d logical bytes, %d wire bytes\n", st.Frames, st.Bytes, st.WireBytes)
	}
	if seg := srv.Segment(); seg != nil {
		st := seg.Stats()
		fmt.Fprintf(os.Stderr, "fadewich-serve: segments: %d frames, %d logical bytes, %d wire bytes\n", st.Frames, st.Bytes, st.WireBytes)
	}
}

// runCoordinator hosts the shard coordinator: no fleet of its own, just
// the assignment state and its HTTP surface.
func runCoordinator(opt options) error {
	if opt.specPath == "" {
		return errors.New("-spec is required")
	}
	if opt.workers == "" {
		return errors.New("coordinator mode needs -workers (comma-separated names)")
	}
	var names []string
	for _, w := range strings.Split(opt.workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			names = append(names, w)
		}
	}
	c, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		SpecPath: opt.specPath,
		Workers:  names,
		Replicas: opt.replicas,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", opt.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fadewich-serve: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: c}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := c.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "fadewich-serve: reload: %v\n", err)
			} else {
				fmt.Fprintln(os.Stderr, "fadewich-serve: spec reloaded")
			}
		}
	}()

	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-term
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- httpSrv.Shutdown(ctx)
	}()

	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return <-done
}

// watchSpec polls the spec file and reconciles whenever its mtime or
// size changes — the declarative alternative to signalling SIGHUP. A
// vanished file is reported through the reconciler as a reconcile
// error (visible in /v1/offices and /metrics) and retried.
func watchSpec(path string, every time.Duration, srv *serve.Server) {
	var lastMod time.Time
	var lastSize int64
	if info, err := os.Stat(path); err == nil {
		lastMod, lastSize = info.ModTime(), info.Size()
	}
	for range time.Tick(every) {
		info, err := os.Stat(path)
		if err != nil {
			if ferr := srv.Reconciler().Fail(fmt.Errorf("watch spec: %w", err)); ferr != nil {
				fmt.Fprintf(os.Stderr, "fadewich-serve: %v\n", ferr)
			}
			continue
		}
		if info.ModTime().Equal(lastMod) && info.Size() == lastSize {
			continue
		}
		lastMod, lastSize = info.ModTime(), info.Size()
		if err := srv.Reload(); err != nil {
			fmt.Fprintf(os.Stderr, "fadewich-serve: watch reload: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "fadewich-serve: spec change applied\n")
		}
	}
}
