// Command fadewich-trace exports a simulated day as CSV for external
// analysis or plotting: either the raw RSSI streams (one column per
// stream, one row per tick) or the ground-truth event log.
//
// Usage:
//
//	fadewich-trace -what streams -day 0 -seed 42 > day0.csv
//	fadewich-trace -what events  -day 0 -seed 42 > events0.csv
//	fadewich-trace -what sumstd  -day 0 -seed 42 > sumstd0.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"fadewich/internal/agent"
	"fadewich/internal/md"
	"fadewich/internal/sim"
)

func main() {
	what := flag.String("what", "streams", "streams | events | sumstd")
	day := flag.Int("day", 0, "day index to export")
	days := flag.Int("days", 1, "days to simulate")
	seed := flag.Uint64("seed", 42, "simulation seed")
	hours := flag.Float64("hours", 8, "day length in hours")
	every := flag.Int("every", 1, "export every n-th tick (streams/sumstd)")
	flag.Parse()

	if err := run(*what, *day, *days, *seed, *hours, *every); err != nil {
		fmt.Fprintf(os.Stderr, "fadewich-trace: %v\n", err)
		os.Exit(1)
	}
}

func run(what string, day, days int, seed uint64, hours float64, every int) error {
	if day < 0 || day >= days {
		return fmt.Errorf("day %d outside [0,%d)", day, days)
	}
	if every < 1 {
		every = 1
	}
	cfg := sim.Config{Days: days, Seed: seed}
	cfg.Agent.DaySeconds = hours * 3600
	ds, err := sim.Generate(cfg)
	if err != nil {
		return err
	}
	trace := ds.Days[day]
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch what {
	case "streams":
		return exportStreams(w, ds, trace, every)
	case "events":
		return exportEvents(w, trace)
	case "sumstd":
		return exportSumStd(w, ds, trace, every)
	default:
		return fmt.Errorf("unknown export %q (want streams, events or sumstd)", what)
	}
}

func exportStreams(w *bufio.Writer, ds *sim.Dataset, trace *sim.Trace, every int) error {
	fmt.Fprint(w, "t")
	for _, l := range ds.Links {
		fmt.Fprintf(w, ",%s", l)
	}
	fmt.Fprintln(w)
	for i := 0; i < trace.Ticks; i += every {
		w.WriteString(strconv.FormatFloat(trace.Time(i), 'f', 1, 64))
		for k := range trace.Streams {
			w.WriteByte(',')
			w.WriteString(strconv.Itoa(int(trace.Streams[k][i])))
		}
		w.WriteByte('\n')
	}
	return nil
}

func exportEvents(w *bufio.Writer, trace *sim.Trace) error {
	fmt.Fprintln(w, "t,type,user,workstation")
	for _, e := range trace.Events {
		fmt.Fprintf(w, "%.1f,%s,%d,%d\n", e.Time, e.Type, e.User, e.Workstation)
	}
	return nil
}

func exportSumStd(w *bufio.Writer, ds *sim.Dataset, trace *sim.Trace, every int) error {
	subset := make([]int, len(ds.Links))
	for i := range subset {
		subset[i] = i
	}
	res, err := md.Run(trace.Streams, subset, trace.DT, md.Config{})
	if err != nil {
		return err
	}
	// Events inline for easy plotting alignment.
	next := 0
	fmt.Fprintln(w, "t,sumstd,anomalous,event")
	for i := 0; i < trace.Ticks; i += every {
		t := trace.Time(i)
		ev := ""
		for next < len(trace.Events) && trace.Events[next].Time <= t {
			e := trace.Events[next]
			if e.Type == agent.EventDeparture || e.Type == agent.EventEntry {
				ev = fmt.Sprintf("%s-w%d", e.Type, e.Workstation+1)
			}
			next++
		}
		anom := 0
		if res.Anomalous[i] {
			anom = 1
		}
		fmt.Fprintf(w, "%.1f,%.2f,%d,%s\n", t, res.SumStd[i], anom, ev)
	}
	return nil
}
