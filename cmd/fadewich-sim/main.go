// Command fadewich-sim demonstrates the streaming FADEWICH System
// end-to-end: it generates a multi-day office dataset, drives the System
// through its training phase on the first days (auto-labelling variation
// windows from workstation idle times), trains the classifier, then runs
// the online phase on the final day and reports every deauthentication
// against the ground truth.
//
// Usage:
//
//	fadewich-sim [-days N] [-seed S] [-sensors M] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"fadewich/internal/agent"
	"fadewich/internal/core"
	"fadewich/internal/kma"
	"fadewich/internal/rng"
	"fadewich/internal/sim"
)

func main() {
	days := flag.Int("days", 3, "total days (all but the last train the system)")
	seed := flag.Uint64("seed", 7, "simulation seed")
	sensors := flag.Int("sensors", 9, "sensors to deploy (3..9)")
	verbose := flag.Bool("v", false, "print every action")
	flag.Parse()

	if err := run(*days, *seed, *sensors, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "fadewich-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(days int, seed uint64, sensors int, verbose bool) error {
	if days < 2 {
		return fmt.Errorf("need at least 2 days (training + online), got %d", days)
	}
	fmt.Printf("generating %d-day dataset (seed %d)...\n", days, seed)
	ds, err := sim.Generate(sim.Config{Days: days, Seed: seed})
	if err != nil {
		return err
	}
	subsetIdx, err := ds.Layout.SensorSubset(sensors)
	if err != nil {
		return err
	}
	streams := ds.StreamSubset(subsetIdx)

	sys, err := core.NewSystem(core.Config{
		DT:           ds.Days[0].DT,
		Streams:      len(streams),
		Workstations: ds.Layout.NumWorkstations(),
	})
	if err != nil {
		return err
	}

	src := rng.New(seed ^ 0xfade)
	inputsPerDay := make([][][]float64, len(ds.Days))
	for day, trace := range ds.Days {
		inputsPerDay[day] = kma.GenerateInputs(trace.InputSpans, trace.Events, kma.InputModel{}, src.Split())
	}

	// Training phase over all but the last day.
	for day := 0; day < days-1; day++ {
		feed(sys, ds.Days[day], streams, inputsPerDay[day], nil)
		fmt.Printf("day %d: %d labelled training samples collected\n", day+1, sys.TrainingSamples())
	}
	if err := sys.FinishTraining(); err != nil {
		return fmt.Errorf("training: %w", err)
	}
	fmt.Printf("classifier trained on %d auto-labelled samples; going online\n\n", sys.TrainingSamples())

	// Online phase on the last day. Times reported day-relative.
	trace := ds.Days[days-1]
	dayBase := sys.Now()
	var deauths []core.Action
	feed(sys, trace, streams, inputsPerDay[days-1], func(a core.Action) {
		a.Time -= dayBase
		if verbose || a.Type == core.ActionDeauthenticate {
			fmt.Printf("  %8.1fs  %-15s w%d", a.Time, a.Type, a.Workstation+1)
			if a.Type == core.ActionDeauthenticate {
				fmt.Printf("  (cause %s)", a.Cause)
			}
			fmt.Println()
		}
		if a.Type == core.ActionDeauthenticate {
			deauths = append(deauths, a)
		}
	})

	// Score online deauthentications against ground-truth departures.
	fmt.Println()
	departures := 0
	caught := 0
	for _, e := range trace.Events {
		if e.Type != agent.EventDeparture {
			continue
		}
		departures++
		for _, d := range deauths {
			if d.Workstation == e.Workstation && d.Time >= e.Time && d.Time <= e.Time+10 {
				caught++
				fmt.Printf("departure w%d at %7.1fs -> deauthenticated +%.1fs (%s)\n",
					e.Workstation+1, e.Time, d.Time-e.Time, d.Cause)
				break
			}
		}
	}
	fmt.Printf("\nonline day: %d/%d departures deauthenticated within 10 s (%d sensors)\n",
		caught, departures, sensors)
	return nil
}

// feed drives the System through one day of the trace, delivering RSSI
// ticks and input notifications in timestamp order. A seated user who sees
// the screensaver activate reacts by moving the mouse ~1.5 s later, which
// cancels the alert — matching the paper's usability accounting where a
// spurious screensaver costs the user a 3-second cancellation.
func feed(sys *core.System, trace *sim.Trace, streams []int, inputs [][]float64, onAction func(core.Action)) {
	const reactionSec = 1.5
	cursor := make([]int, len(inputs))
	rssi := make([]float64, len(streams))
	reactAt := make([]float64, len(inputs))
	for ws := range reactAt {
		reactAt[ws] = -1
	}
	base := sys.Now()
	seated := func(ws int, t float64) bool {
		for _, iv := range trace.Seated[ws] {
			if iv.Contains(t) {
				return true
			}
		}
		return false
	}
	for i := 0; i < trace.Ticks; i++ {
		t := base + float64(i+1)*trace.DT
		dayT := float64(i+1) * trace.DT
		for ws := range inputs {
			for cursor[ws] < len(inputs[ws]) && base+inputs[ws][cursor[ws]] <= t {
				sys.NotifyInput(ws)
				cursor[ws]++
			}
			if reactAt[ws] >= 0 && t >= reactAt[ws] {
				sys.NotifyInput(ws)
				reactAt[ws] = -1
			}
		}
		for j, k := range streams {
			rssi[j] = float64(trace.Streams[k][i])
		}
		for _, a := range sys.Tick(rssi) {
			if a.Type == core.ActionScreensaverOn && seated(a.Workstation, dayT) {
				reactAt[a.Workstation] = t + reactionSec
			}
			if onAction != nil {
				onAction(a)
			}
		}
	}
}
