// Command fadewich-sim demonstrates the streaming FADEWICH System
// end-to-end: it generates a multi-day office dataset, drives the System
// through its training phase on the first days (auto-labelling variation
// windows from workstation idle times), trains the classifier, then runs
// the online phase on the final day and reports every deauthentication
// against the ground truth.
//
// With -offices K (K > 1) it scales the same pipeline to a fleet: K
// independent office deployments generate their datasets in parallel,
// train and serve as one engine.Fleet sharded across -parallel workers,
// and report the aggregate catch rate plus fleet throughput.
//
// With -office-config FILE the fleet is heterogeneous: FILE holds a JSON
// array of per-office overrides (floor plan, sensor count, rng seed, MD
// thresholds), one element per office, and each tenant runs its own
// layout and configuration inside the same fleet. Fields left zero
// inherit the shared defaults (the -sensors/-seed flags and the paper
// office).
//
// With -churn N the fleet is elastic: N membership events are spread
// across the online day — odd events join a fresh tenant (which starts
// clean in its training phase and streams its own ticks), even events
// drain and remove the oldest joiner. The original offices keep serving
// and scoring throughout.
//
// With -sink the fleet is driven through the asynchronous stream layer
// (stream.Ingestor) and the merged action stream is delivered to the
// named backends: a JSONL log file, a TCP peer (wire frames), a durable
// segment directory (rotating wire-frame files, replayable with
// fadewich-tail), or an in-memory ring. -codec selects the frame payload
// codec of the framed sinks (tcp, seg) and -fsync the segment log's
// durability policy. -queue and -on-full tune the per-office tick
// queue and its backpressure policy; -max-latency bounds how long queued
// ticks may wait before the dispatcher flushes them on its own. -sink
// implies fleet mode even with a single office, as do -office-config and
// -churn.
//
// Usage:
//
//	fadewich-sim [-days N] [-seed S] [-sensors M] [-offices K] [-parallel P]
//	             [-office-config FILE] [-churn N]
//	             [-sink log:PATH|tcp:ADDR|seg:DIR|ring[:N][,...]] [-queue Q]
//	             [-codec 1|2] [-fsync never|rotate|always]
//	             [-on-full block|drop-oldest|error] [-max-latency D] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"fadewich/internal/agent"
	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/kma"
	"fadewich/internal/md"
	"fadewich/internal/office"
	"fadewich/internal/prof"
	"fadewich/internal/rf"
	"fadewich/internal/rng"
	"fadewich/internal/segment"
	"fadewich/internal/sim"
	"fadewich/internal/stream"
	"fadewich/internal/vmath"
	"fadewich/internal/wire"
)

func main() {
	days := flag.Int("days", 3, "total days (all but the last train the system)")
	seed := flag.Uint64("seed", 7, "simulation seed")
	sensors := flag.Int("sensors", 9, "sensors to deploy (3..9)")
	offices := flag.Int("offices", 1, "independent office deployments to run as a fleet")
	parallel := flag.Int("parallel", 0, "worker pool width (0 = one per CPU, 1 = sequential)")
	officeConfig := flag.String("office-config", "", "JSON file with per-office overrides (layout, sensors, seed, MD thresholds); implies fleet mode")
	churn := flag.Int("churn", 0, "membership events (add/remove offices) spread across the online day; implies fleet mode")
	sinkSpec := flag.String("sink", "", "action sinks: log:PATH, tcp:ADDR, seg:DIR, ring[:N], comma-separated for fan-out")
	codec := flag.Int("codec", 1, "wire codec of framed sinks (tcp, seg): 1 = JSONL payloads, 2 = compact binary")
	compress := flag.Bool("compress", false, "deflate frame bodies on framed sinks (tcp, seg); decoded output is byte-identical")
	fsync := flag.String("fsync", "rotate", "segment log durability: never, rotate (fsync sealed segments) or always (fsync every frame)")
	queue := flag.Int("queue", 0, "per-office tick queue capacity (0 = default 256)")
	onFull := flag.String("on-full", "block", "backpressure policy when a queue is full: block, drop-oldest or error")
	maxLatency := flag.Duration("max-latency", 0, "dispatch queued ticks at most this long after they arrive, without waiting for a flush (0 = flush-driven; needs -sink)")
	verbose := flag.Bool("v", false, "print every action")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile to this file at exit")
	flag.Parse()
	// Name the active vmath kernel path once at startup (stderr, so it
	// never mixes into the action stream on stdout): perf numbers and
	// golden comparisons are only meaningful alongside the dispatch
	// table that produced them.
	fmt.Fprintf(os.Stderr, "fadewich-sim: vmath kernels: %s\n", vmath.ActivePath())
	stopProf, err := prof.Start(prof.Flags{CPU: *cpuProfile, Mem: *memProfile, Mutex: *mutexProfile})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fadewich-sim: %v\n", err)
		os.Exit(1)
	}
	officesSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "offices" {
			officesSet = true
		}
	})

	switch {
	case *offices < 1:
		err = fmt.Errorf("need at least 1 office, got %d", *offices)
	case *officeConfig != "" && officesSet:
		err = fmt.Errorf("-offices and -office-config conflict: the config file's element count sets the fleet size")
	case *churn < 0:
		err = fmt.Errorf("churn count must be non-negative, got %d", *churn)
	case *codec != 1 && *codec != 2:
		err = fmt.Errorf("unknown wire codec %d (want 1 or 2)", *codec)
	case *offices > 1 || *sinkSpec != "" || *officeConfig != "" || *churn > 0:
		err = runFleet(*days, *seed, *sensors, *offices, *parallel, *officeConfig, *churn,
			sinkOptions{spec: *sinkSpec, codec: wire.Version(*codec), fsync: *fsync, compress: *compress},
			*queue, *onFull, *maxLatency, *verbose)
	default:
		err = run(*days, *seed, *sensors, *parallel, *verbose)
	}
	// Flush profiles before deciding the exit code (os.Exit would skip a
	// deferred flush), and let a profile-write failure surface when the
	// run itself succeeded.
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fadewich-sim: %v\n", err)
		os.Exit(1)
	}
}

// officeSpec is one office's overrides in the -office-config JSON array.
// Zero fields inherit the shared defaults.
type officeSpec struct {
	// Layout names the floor plan: paper (default), small or wide.
	Layout string `json:"layout"`
	// Sensors is the number of sensors to deploy (0 inherits -sensors).
	Sensors int `json:"sensors"`
	// Seed overrides this office's dataset seed (0 derives one from
	// -seed and the office index).
	Seed uint64 `json:"seed"`
	// MDStdWindowSec overrides the movement detector's rolling std-dev
	// window d in seconds.
	MDStdWindowSec float64 `json:"md_std_window_sec"`
	// MDAlpha overrides the anomaly tail percentage: s_t above the
	// (100-alpha)-th profile percentile is anomalous.
	MDAlpha float64 `json:"md_alpha"`
	// MDTau overrides the profile-update batch rejection threshold.
	MDTau float64 `json:"md_tau"`
}

// layoutByName maps the JSON layout spelling to a floor plan.
func layoutByName(name string) (*office.Layout, error) {
	switch name {
	case "", "paper":
		return office.Paper(), nil
	case "small":
		return office.Small(), nil
	case "wide":
		return office.Wide(), nil
	default:
		return nil, fmt.Errorf("unknown layout %q (want paper, small or wide)", name)
	}
}

// loadOfficeSpecs parses the -office-config JSON array.
func loadOfficeSpecs(path string) ([]officeSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var specs []officeSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%s: empty office list", path)
	}
	return specs, nil
}

// tenant is one office's full runtime state: its spec, dataset, deployed
// stream subset, resolved System configuration and per-day input draws.
type tenant struct {
	id      int
	spec    officeSpec
	ds      *sim.Dataset
	streams []int
	cfg     core.Config
	// inputs[day][ws] lists input timestamps (nil for churn joiners, which
	// stream ticks but receive no keyboard/mouse feed).
	inputs [][][]float64
	// joinTick is the day-absolute tick a churn joiner entered the fleet.
	joinTick int
}

// buildTenant resolves one office's spec into a generated dataset, its
// deployed stream subset and the office System configuration.
func buildTenant(spec officeSpec, days int, dsSeed, inputSeed uint64, defSensors int, withInputs bool) (*tenant, error) {
	layout, err := layoutByName(spec.Layout)
	if err != nil {
		return nil, err
	}
	if spec.Seed != 0 {
		dsSeed = spec.Seed
	}
	ds, err := sim.Generate(sim.Config{Days: days, Seed: dsSeed, Layout: layout, Workers: 1})
	if err != nil {
		return nil, err
	}
	sensors := spec.Sensors
	if sensors == 0 {
		sensors = defSensors
	}
	if sensors > layout.NumSensors() {
		sensors = layout.NumSensors()
	}
	subsetIdx, err := ds.Layout.SensorSubset(sensors)
	if err != nil {
		return nil, err
	}
	streams := ds.StreamSubset(subsetIdx)
	tn := &tenant{
		spec:    spec,
		ds:      ds,
		streams: streams,
		cfg: core.Config{
			DT:           ds.Days[0].DT,
			Streams:      len(streams),
			Workstations: ds.Layout.NumWorkstations(),
			MD: md.Config{
				StdWindowSec: spec.MDStdWindowSec,
				Alpha:        spec.MDAlpha,
				Tau:          spec.MDTau,
			},
		},
	}
	if withInputs {
		src := rng.New(inputSeed)
		tn.inputs = make([][][]float64, days)
		for day, trace := range ds.Days {
			tn.inputs[day] = kma.GenerateInputs(trace.InputSpans, trace.Events, kma.InputModel{}, src.Split())
		}
	}
	return tn, nil
}

func run(days int, seed uint64, sensors, parallel int, verbose bool) error {
	if days < 2 {
		return fmt.Errorf("need at least 2 days (training + online), got %d", days)
	}
	fmt.Printf("generating %d-day dataset (seed %d)...\n", days, seed)
	ds, err := sim.Generate(sim.Config{Days: days, Seed: seed, Workers: parallel})
	if err != nil {
		return err
	}
	subsetIdx, err := ds.Layout.SensorSubset(sensors)
	if err != nil {
		return err
	}
	streams := ds.StreamSubset(subsetIdx)

	sys, err := core.NewSystem(core.Config{
		DT:           ds.Days[0].DT,
		Streams:      len(streams),
		Workstations: ds.Layout.NumWorkstations(),
	})
	if err != nil {
		return err
	}

	src := rng.New(seed ^ 0xfade)
	inputsPerDay := make([][][]float64, len(ds.Days))
	for day, trace := range ds.Days {
		inputsPerDay[day] = kma.GenerateInputs(trace.InputSpans, trace.Events, kma.InputModel{}, src.Split())
	}

	// Training phase over all but the last day.
	for day := 0; day < days-1; day++ {
		feed(sys, ds.Days[day], streams, inputsPerDay[day], nil)
		fmt.Printf("day %d: %d labelled training samples collected\n", day+1, sys.TrainingSamples())
	}
	if err := sys.FinishTraining(); err != nil {
		return fmt.Errorf("training: %w", err)
	}
	fmt.Printf("classifier trained on %d auto-labelled samples; going online\n\n", sys.TrainingSamples())

	// Online phase on the last day. Times reported day-relative.
	trace := ds.Days[days-1]
	dayBase := sys.Now()
	var deauths []core.Action
	feed(sys, trace, streams, inputsPerDay[days-1], func(a core.Action) {
		a.Time -= dayBase
		if verbose || a.Type == core.ActionDeauthenticate {
			fmt.Printf("  %8.1fs  %-15s w%d", a.Time, a.Type, a.Workstation+1)
			if a.Type == core.ActionDeauthenticate {
				fmt.Printf("  (cause %s)", a.Cause)
			}
			fmt.Println()
		}
		if a.Type == core.ActionDeauthenticate {
			deauths = append(deauths, a)
		}
	})

	// Score online deauthentications against ground-truth departures.
	fmt.Println()
	caught, departures := scoreDay(trace, deauths, verbose, -1)
	fmt.Printf("\nonline day: %d/%d departures deauthenticated within 10 s (%d sensors)\n",
		caught, departures, sensors)
	return nil
}

// feed drives the System through one day of the trace, delivering RSSI
// ticks and input notifications in timestamp order. A seated user who sees
// the screensaver activate reacts by moving the mouse ~1.5 s later, which
// cancels the alert — matching the paper's usability accounting where a
// spurious screensaver costs the user a 3-second cancellation.
func feed(sys *core.System, trace *sim.Trace, streams []int, inputs [][]float64, onAction func(core.Action)) {
	const reactionSec = 1.5
	cursor := make([]int, len(inputs))
	rssi := make([]float64, len(streams))
	reactAt := make([]float64, len(inputs))
	for ws := range reactAt {
		reactAt[ws] = -1
	}
	base := sys.Now()
	for i := 0; i < trace.Ticks; i++ {
		t := base + float64(i+1)*trace.DT
		dayT := float64(i+1) * trace.DT
		for ws := range inputs {
			for cursor[ws] < len(inputs[ws]) && base+inputs[ws][cursor[ws]] <= t {
				sys.NotifyInput(ws)
				cursor[ws]++
			}
			if reactAt[ws] >= 0 && t >= reactAt[ws] {
				sys.NotifyInput(ws)
				reactAt[ws] = -1
			}
		}
		for j, k := range streams {
			rssi[j] = float64(trace.Streams[k][i])
		}
		for _, a := range sys.Tick(rssi) {
			if a.Type == core.ActionScreensaverOn && seatedAt(trace, a.Workstation, dayT) {
				reactAt[a.Workstation] = t + reactionSec
			}
			if onAction != nil {
				onAction(a)
			}
		}
	}
}

// seatedAt reports whether workstation ws's user is seated at
// day-relative time t.
func seatedAt(trace *sim.Trace, ws int, t float64) bool {
	if ws < 0 || ws >= len(trace.Seated) {
		return false
	}
	for _, iv := range trace.Seated[ws] {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// scoreDay counts ground-truth departures deauthenticated within 10
// seconds. Deauth times are day-relative. office >= 0 adds a fleet label
// to the per-departure lines (verbose only).
func scoreDay(trace *sim.Trace, deauths []core.Action, verbose bool, office int) (caught, departures int) {
	for _, e := range trace.Events {
		if e.Type != agent.EventDeparture {
			continue
		}
		departures++
		for _, d := range deauths {
			if d.Workstation == e.Workstation && d.Time >= e.Time && d.Time <= e.Time+10 {
				caught++
				if verbose || office < 0 {
					if office >= 0 {
						fmt.Printf("office %3d: ", office)
					}
					fmt.Printf("departure w%d at %7.1fs -> deauthenticated +%.1fs (%s)\n",
						e.Workstation+1, e.Time, d.Time-e.Time, d.Cause)
				}
				break
			}
		}
	}
	return caught, departures
}

// sinkOptions bundle the sink-shaping flags.
type sinkOptions struct {
	spec     string
	codec    wire.Version
	fsync    string
	compress bool
}

// sinkSet is the parsed -sink fan-out, with the individual sinks that
// have end-of-run reporting kept addressable.
type sinkSet struct {
	sink stream.Sink
	ring *stream.RingSink
	seg  *stream.SegmentSink
	tcps []*stream.TCPSink
}

// buildSink parses the -sink flag: a comma-separated list of log:PATH,
// tcp:ADDR, seg:DIR and ring[:N] specs, fanned out through a MultiSink
// when more than one is named. The codec applies to the framed sinks
// (tcp, seg); the fsync policy to the segment log.
func buildSink(opt sinkOptions) (*sinkSet, error) {
	set := &sinkSet{}
	var sinks []stream.Sink
	for _, part := range strings.Split(opt.spec, ",") {
		part = strings.TrimSpace(part)
		switch {
		case strings.HasPrefix(part, "log:"):
			s, err := stream.NewLogSink(strings.TrimPrefix(part, "log:"))
			if err != nil {
				return nil, err
			}
			sinks = append(sinks, s)
		case strings.HasPrefix(part, "tcp:"):
			s, err := stream.NewTCPSink(strings.TrimPrefix(part, "tcp:"))
			if err != nil {
				return nil, err
			}
			s.Version = opt.codec
			s.Compress = opt.compress
			set.tcps = append(set.tcps, s)
			sinks = append(sinks, s)
		case strings.HasPrefix(part, "seg:"):
			policy, err := segment.ParseFsyncPolicy(opt.fsync)
			if err != nil {
				return nil, err
			}
			s, err := stream.NewSegmentSink(segment.Config{
				Dir:      strings.TrimPrefix(part, "seg:"),
				Fsync:    policy,
				Version:  opt.codec,
				Compress: opt.compress,
			})
			if err != nil {
				return nil, err
			}
			set.seg = s
			sinks = append(sinks, s)
		case part == "ring" || strings.HasPrefix(part, "ring:"):
			capacity := 0
			if rest := strings.TrimPrefix(part, "ring"); rest != "" {
				n, err := strconv.Atoi(strings.TrimPrefix(rest, ":"))
				if err != nil || n < 1 {
					return nil, fmt.Errorf("bad ring capacity in %q", part)
				}
				capacity = n
			}
			set.ring = stream.NewRingSink(capacity)
			sinks = append(sinks, set.ring)
		default:
			return nil, fmt.Errorf("unknown sink %q (want log:PATH, tcp:ADDR, seg:DIR or ring[:N])", part)
		}
	}
	if len(sinks) == 1 {
		set.sink = sinks[0]
	} else {
		// Encode-once fan-out: frame-capable members (the segment log)
		// share one encode per (codec, compressed) variant per dispatch.
		set.sink = stream.NewEncodeOnceSink(sinks...)
	}
	return set, nil
}

// runFleet scales the pipeline to a multi-tenant engine.Fleet: per-office
// datasets generate in parallel (heterogeneous when -office-config names
// per-tenant layouts/sensor counts/seeds/thresholds), then the fleet
// trains and serves all offices sharded across the worker pool. With a
// sink spec the fleet is driven through a stream.Ingestor and the merged
// action stream is also delivered to the named backends; with -churn the
// membership changes mid-run.
func runFleet(days int, seed uint64, sensors, offices, parallel int, officeConfig string, churn int, sinkOpt sinkOptions, queue int, onFull string, maxLatency time.Duration, verbose bool) error {
	if days < 2 {
		return fmt.Errorf("need at least 2 days (training + online), got %d", days)
	}
	specs := make([]officeSpec, offices)
	if officeConfig != "" {
		loaded, err := loadOfficeSpecs(officeConfig)
		if err != nil {
			return fmt.Errorf("office config: %w", err)
		}
		specs = loaded
		offices = len(specs)
	}

	pool := engine.NewPool(parallel)
	start := time.Now()
	fmt.Printf("generating %d-day datasets for %d offices (seed %d, %d workers)...\n",
		days, offices, seed, pool.Workers())
	tenants, err := engine.Gather(pool, offices, func(o int) (*tenant, error) {
		// Each office gets its own seed stream; day-level parallelism is
		// already saturated by the office fan-out.
		tn, err := buildTenant(specs[o], days, seed+uint64(o)*0x9e3779b9, (seed+uint64(o))^0xfade, sensors, true)
		if err != nil {
			return nil, fmt.Errorf("office %d: %w", o, err)
		}
		tn.id = o
		return tn, nil
	})
	if err != nil {
		return err
	}
	if officeConfig != "" {
		for _, tn := range tenants {
			layout := tn.spec.Layout
			if layout == "" {
				layout = "paper"
			}
			fmt.Printf("office %3d: layout %-5s  %2d streams  %d workstations\n",
				tn.id, layout, len(tn.streams), tn.ds.Layout.NumWorkstations())
		}
	}

	perOffice := make(map[int]core.Config, offices)
	for _, tn := range tenants {
		perOffice[tn.id] = tn.cfg
	}
	fleet, err := engine.NewFleet(engine.FleetConfig{
		Offices:   offices,
		Workers:   parallel,
		System:    tenants[0].cfg,
		PerOffice: perOffice,
	})
	if err != nil {
		return err
	}

	// Batch delivery: straight to the fleet, or through the asynchronous
	// stream layer when sinks are attached. The ingestor's synchronous
	// OnBatch tap hands each dispatched batch back so the day loop's
	// reaction scheduling and scoring see exactly the stream the sinks do.
	deliver := fleet.Run
	var ing *stream.Ingestor
	var sinks *sinkSet
	if sinkOpt.spec != "" {
		policy, err := stream.ParsePolicy(onFull)
		if err != nil {
			return err
		}
		sinks, err = buildSink(sinkOpt)
		if err != nil {
			return err
		}
		var collected []engine.OfficeAction
		ing, err = stream.NewIngestor(fleet, stream.Config{
			Queue:           queue,
			OnFull:          policy,
			MaxBatchLatency: maxLatency,
			Sink:            sinks.sink,
			OnBatch: func(acts []engine.OfficeAction) {
				collected = append(collected, acts...)
			},
		})
		if err != nil {
			return err
		}
		defer ing.Close()
		deliver = func(batches []engine.OfficeBatch, evs []engine.InputEvent) ([]engine.OfficeAction, error) {
			collected = collected[:0]
			if err := ing.PushOffices(batches, evs); err != nil {
				return nil, err
			}
			if err := ing.Flush(); err != nil {
				return nil, err
			}
			return collected, nil
		}
		effQueue := queue
		if effQueue == 0 {
			effQueue = stream.DefaultQueue
		}
		fmt.Printf("streaming actions to %s (codec %s, queue %d, on-full %s)\n",
			sinkOpt.spec, sinkOpt.codec, effQueue, policy)
	}
	fmt.Printf("datasets ready in %.1fs; training fleet on %d day(s)...\n",
		time.Since(start).Seconds(), days-1)

	totalTicks := 0
	serveStart := time.Now()
	for day := 0; day < days-1; day++ {
		ticks, err := fleetDay(fleet, deliver, tenants, day, nil, nil)
		if err != nil {
			return err
		}
		totalTicks += ticks
	}
	if err := fleet.FinishTraining(); err != nil {
		return fmt.Errorf("training: %w", err)
	}
	fmt.Printf("%d classifiers trained on %d auto-labelled samples total; going online\n\n",
		offices, fleet.TrainingSamples())

	// Elastic membership plan for the online day.
	var plan *churnPlan
	if churn > 0 {
		plan, err = buildChurnPlan(fleet, ing, tenants, churn, seed, sensors)
		if err != nil {
			return err
		}
	}

	// Online phase: the merged, time-ordered fleet stream scores each
	// office against its own ground truth.
	dayBase := make(map[int]float64, offices)
	for _, tn := range tenants {
		dayBase[tn.id] = fleet.System(tn.id).Now()
	}
	deauths := make(map[int][]core.Action, offices)
	online := days - 1
	ticks, err := fleetDay(fleet, deliver, tenants, online, plan, func(a engine.OfficeAction) {
		base, original := dayBase[a.Office]
		if !original {
			return // churn joiner: training-phase actions are not scored
		}
		act := a.Action
		act.Time -= base
		if verbose {
			fmt.Printf("  office %3d  %8.1fs  %-15s w%d\n", a.Office, act.Time, act.Type, act.Workstation+1)
		}
		if act.Type == core.ActionDeauthenticate {
			deauths[a.Office] = append(deauths[a.Office], act)
		}
	})
	if err != nil {
		return err
	}
	totalTicks += ticks

	caught, departures := 0, 0
	for _, tn := range tenants {
		c, d := scoreDay(tn.ds.Days[online], deauths[tn.id], verbose, tn.id)
		caught += c
		departures += d
	}
	elapsed := time.Since(serveStart).Seconds()
	deployment := fmt.Sprintf("%d sensors", sensors)
	if officeConfig != "" {
		deployment = "per-office sensor counts"
	}
	fmt.Printf("\nfleet online day: %d/%d departures deauthenticated within 10 s across %d offices (%s)\n",
		caught, departures, offices, deployment)
	fmt.Printf("fleet throughput: %.0f ticks/sec (%d ticks over %.1fs, %d workers)\n",
		float64(totalTicks)/elapsed, totalTicks, elapsed, pool.Workers())
	if plan != nil {
		fmt.Printf("churn: %d joins, %d removals; fleet ended with %d offices\n",
			plan.joins, plan.removals, fleet.Offices())
	}

	if ing != nil {
		if err := ing.Close(); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		st := ing.Stats()
		fmt.Printf("sink stream: %d actions in %d batches, %d dropped ticks\n",
			st.Actions, st.Batches, st.Dropped)
		if sinks.ring != nil {
			fmt.Printf("ring sink retains the %d newest actions (%d overwritten)\n",
				sinks.ring.Len(), sinks.ring.Overwritten())
		}
		if sinks.seg != nil {
			sst := sinks.seg.Stats()
			fmt.Printf("segment log: %d frames (%d logical bytes, %d wire bytes) across %d sealed segments, %d fsyncs\n",
				sst.Frames, sst.Bytes, sst.WireBytes, sst.Sealed, sst.Syncs)
		}
		for _, tcp := range sinks.tcps {
			tst := tcp.Stats()
			fmt.Printf("tcp sink: %d frames (%d logical bytes, %d wire bytes) in %d attempts, %d redials (%d dial / %d write failures)\n",
				tst.Frames, tst.Bytes, tst.WireBytes, tst.Attempts, tst.Redials, tst.DialFailures, tst.WriteFailures)
		}
	}
	return nil
}

// churnPlan schedules membership events across the online day: event k
// fires at the first batch boundary past tick (k+1)*maxTicks/(N+1),
// alternating between joining a pre-generated tenant and draining and
// removing the oldest joiner.
type churnPlan struct {
	fleet    *engine.Fleet
	ing      *stream.Ingestor // nil when delivery is synchronous
	events   []int            // event tick positions, ascending
	next     int              // next event index
	joiners  []*tenant        // pre-generated, not yet joined
	active   []*tenant        // joined, in join order
	joins    int
	removals int
}

// buildChurnPlan pre-generates one single-day dataset per join event so
// the online loop never stalls on dataset generation mid-run.
func buildChurnPlan(fleet *engine.Fleet, ing *stream.Ingestor, tenants []*tenant, events int, seed uint64, sensors int) (*churnPlan, error) {
	joins := (events + 1) / 2
	plan := &churnPlan{fleet: fleet, ing: ing}
	for k := 0; k < joins; k++ {
		tn, err := buildTenant(officeSpec{}, 1, seed+0xC0FFEE+uint64(k)*0x9e3779b9, 0, sensors, false)
		if err != nil {
			return nil, fmt.Errorf("churn joiner %d: %w", k, err)
		}
		plan.joiners = append(plan.joiners, tn)
	}
	maxTicks := 0
	for _, tn := range tenants {
		if t := tn.ds.Days[len(tn.ds.Days)-1].Ticks; t > maxTicks {
			maxTicks = t
		}
	}
	for k := 0; k < events; k++ {
		plan.events = append(plan.events, (k+1)*maxTicks/(events+1))
	}
	return plan, nil
}

// apply fires every event scheduled at or before startTick. It returns
// the tenants joined by those events so the day loop can start feeding
// them.
func (p *churnPlan) apply(startTick int) ([]*tenant, error) {
	var joined []*tenant
	for p.next < len(p.events) && p.events[p.next] <= startTick {
		ev := p.next
		p.next++
		if ev%2 == 0 && len(p.joiners) > 0 {
			tn := p.joiners[0]
			p.joiners = p.joiners[1:]
			var id int
			var err error
			if p.ing != nil {
				id, err = p.ing.AddOffice(tn.cfg)
			} else {
				id, err = p.fleet.AddOffice(tn.cfg)
			}
			if err != nil {
				return nil, fmt.Errorf("churn: join: %w", err)
			}
			tn.id = id
			tn.joinTick = startTick
			p.active = append(p.active, tn)
			p.joins++
			joined = append(joined, tn)
			fmt.Printf("churn: +office %d joined at tick %d (%d streams, training)\n", id, startTick, tn.cfg.Streams)
		} else if len(p.active) > 0 {
			tn := p.active[0]
			p.active = p.active[1:]
			var sys *core.System
			var err error
			if p.ing != nil {
				sys, err = p.ing.RemoveOffice(tn.id)
			} else {
				sys, err = p.fleet.RemoveOffice(tn.id)
			}
			if err != nil {
				return nil, fmt.Errorf("churn: remove: %w", err)
			}
			p.removals++
			fmt.Printf("churn: -office %d removed at tick %d (drained; %d training samples collected)\n",
				tn.id, startTick, sys.TrainingSamples())
		}
	}
	return joined, nil
}

// joinerTrace reports whether office id is a churn joiner still active,
// returning its tenant state.
func (p *churnPlan) joinerTrace(id int) (*tenant, bool) {
	if p == nil {
		return nil, false
	}
	for _, tn := range p.active {
		if tn.id == id {
			return tn, true
		}
	}
	return nil, false
}

// sliceBlock fills blk with ticks [lo, hi) of the trace's deployed
// stream subset — the columnar payload of one OfficeBatch. The block is
// reused across batch windows; both delivery paths (Fleet.Run and
// Ingestor.PushOffices) finish reading it before returning.
func sliceBlock(trace *sim.Trace, streams []int, lo, hi int, blk *rf.Block) {
	blk.Reset(hi-lo, len(streams))
	for i := lo; i < hi; i++ {
		row := blk.Row(i - lo)
		for j, k := range streams {
			row[j] = float64(trace.Streams[k][i])
		}
	}
}

// fleetDay drives every tenant through one day in batches, handling input
// delivery, the seated user's ~1.5 s screensaver reaction, and (on the
// online day) the churn plan's membership events. It returns the number
// of ticks delivered fleet-wide.
//
// The batch size must not exceed the reaction delay: a screensaver seen
// in batch b schedules a reaction input that can only be delivered from
// batch b+1 on, and the alert deauthenticates t_ss (3 s) after the
// screensaver. With batchTicks <= reactionTicks the due tick always
// falls inside the next batch, so the reaction lands at its exact tick —
// the same cancellation the single-office feed() performs — instead of
// arriving after the session is already gone.
func fleetDay(fleet *engine.Fleet, deliver func([]engine.OfficeBatch, []engine.InputEvent) ([]engine.OfficeAction, error), tenants []*tenant, day int, plan *churnPlan, onAction func(engine.OfficeAction)) (int, error) {
	dt := tenants[0].ds.Days[day].DT
	reactionTicks := int(math.Ceil(1.5 / dt))
	batchTicks := reactionTicks

	dayBase := make(map[int]float64, len(tenants))
	cursor := make(map[int][]int, len(tenants))
	pending := make(map[int][]engine.InputEvent, len(tenants)) // reactions, Tick day-absolute
	byID := make(map[int]*tenant, len(tenants))
	blocks := make(map[int]*rf.Block, len(tenants)) // per-office columnar payloads, reused per window
	maxTicks := 0
	for _, tn := range tenants {
		byID[tn.id] = tn
		dayBase[tn.id] = fleet.System(tn.id).Now()
		cursor[tn.id] = make([]int, len(tn.inputs[day]))
		if t := tn.ds.Days[day].Ticks; t > maxTicks {
			maxTicks = t
		}
	}
	blockFor := func(id int) *rf.Block {
		b := blocks[id]
		if b == nil {
			b = new(rf.Block)
			blocks[id] = b
		}
		return b
	}
	// Churn joiners streaming this day, keyed by office ID.
	joiners := make(map[int]*tenant)

	total := 0
	for startTick := 0; startTick < maxTicks; startTick += batchTicks {
		if plan != nil {
			newJoiners, err := plan.apply(startTick)
			if err != nil {
				return total, err
			}
			for _, tn := range newJoiners {
				joiners[tn.id] = tn
			}
			for id := range joiners {
				if _, still := plan.joinerTrace(id); !still {
					delete(joiners, id)
				}
			}
		}
		endTick := startTick + batchTicks
		if endTick > maxTicks {
			endTick = maxTicks
		}
		var batches []engine.OfficeBatch
		var evs []engine.InputEvent
		for _, tn := range tenants {
			trace := tn.ds.Days[day]
			end := endTick
			if end > trace.Ticks {
				end = trace.Ticks
			}
			if startTick >= end {
				continue // this office's day is already over
			}
			blk := blockFor(tn.id)
			sliceBlock(trace, tn.streams, startTick, end, blk)
			batches = append(batches, engine.OfficeBatch{Office: tn.id, Block: blk})
			total += end - startTick

			// Scheduled keyboard/mouse inputs falling in this range.
			for ws, times := range tn.inputs[day] {
				for cursor[tn.id][ws] < len(times) && int(times[cursor[tn.id][ws]]/dt) < end {
					tick := int(times[cursor[tn.id][ws]] / dt)
					if tick < startTick {
						tick = startTick
					}
					evs = append(evs, engine.InputEvent{Office: tn.id, Workstation: ws, Tick: tick - startTick})
					cursor[tn.id][ws]++
				}
			}
			// Matured screensaver reactions.
			keep := pending[tn.id][:0]
			for _, ev := range pending[tn.id] {
				if ev.Tick < end {
					tick := ev.Tick
					if tick < startTick {
						tick = startTick
					}
					evs = append(evs, engine.InputEvent{Office: tn.id, Workstation: ev.Workstation, Tick: tick - startTick})
				} else {
					keep = append(keep, ev)
				}
			}
			pending[tn.id] = keep
		}
		// Churn joiners stream their own (single-day) trace, offset to
		// their join tick; they are in the training phase and receive no
		// input feed.
		for id, tn := range joiners {
			trace := tn.ds.Days[0]
			lo, hi := startTick-tn.joinTick, endTick-tn.joinTick
			if lo < 0 {
				lo = 0
			}
			if hi > trace.Ticks {
				hi = trace.Ticks
			}
			if lo >= hi {
				continue
			}
			blk := blockFor(id)
			sliceBlock(trace, tn.streams, lo, hi, blk)
			batches = append(batches, engine.OfficeBatch{Office: id, Block: blk})
			total += hi - lo
		}

		acts, err := deliver(batches, evs)
		if err != nil {
			return total, err
		}
		for _, a := range acts {
			tn := byID[a.Office]
			if tn == nil {
				if onAction != nil {
					onAction(a) // churn joiner action
				}
				continue
			}
			dayT := a.Action.Time - dayBase[a.Office]
			if a.Action.Type == core.ActionScreensaverOn && seatedAt(tn.ds.Days[day], a.Action.Workstation, dayT) {
				// Day-relative tick index of the screensaver action
				// (rounded against float drift), due reactionTicks later —
				// the same tick feed() would deliver the reaction at.
				ssTick := int(dayT/dt+0.5) - 1
				pending[a.Office] = append(pending[a.Office], engine.InputEvent{
					Office:      a.Office,
					Workstation: a.Action.Workstation,
					Tick:        ssTick + reactionTicks,
				})
			}
			if onAction != nil {
				onAction(a)
			}
		}
	}
	return total, nil
}
