// Command fadewich-sim demonstrates the streaming FADEWICH System
// end-to-end: it generates a multi-day office dataset, drives the System
// through its training phase on the first days (auto-labelling variation
// windows from workstation idle times), trains the classifier, then runs
// the online phase on the final day and reports every deauthentication
// against the ground truth.
//
// With -offices K (K > 1) it scales the same pipeline to a fleet: K
// independent office deployments generate their datasets in parallel,
// train and serve as one engine.Fleet sharded across -parallel workers,
// and report the aggregate catch rate plus fleet throughput.
//
// With -sink the fleet is driven through the asynchronous stream layer
// (stream.Ingestor) and the merged action stream is delivered to the
// named backends: a JSONL log file, a TCP peer (length-prefixed frames),
// or an in-memory ring. -queue and -on-full tune the per-office tick
// queue and its backpressure policy. -sink implies fleet mode even with
// a single office.
//
// Usage:
//
//	fadewich-sim [-days N] [-seed S] [-sensors M] [-offices K] [-parallel P]
//	             [-sink log:PATH|tcp:ADDR|ring[:N][,...]] [-queue Q]
//	             [-on-full block|drop-oldest|error] [-v]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"fadewich/internal/agent"
	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/kma"
	"fadewich/internal/rng"
	"fadewich/internal/sim"
	"fadewich/internal/stream"
)

func main() {
	days := flag.Int("days", 3, "total days (all but the last train the system)")
	seed := flag.Uint64("seed", 7, "simulation seed")
	sensors := flag.Int("sensors", 9, "sensors to deploy (3..9)")
	offices := flag.Int("offices", 1, "independent office deployments to run as a fleet")
	parallel := flag.Int("parallel", 0, "worker pool width (0 = one per CPU, 1 = sequential)")
	sinkSpec := flag.String("sink", "", "action sinks: log:PATH, tcp:ADDR, ring[:N], comma-separated for fan-out")
	queue := flag.Int("queue", 0, "per-office tick queue capacity (0 = default 256)")
	onFull := flag.String("on-full", "block", "backpressure policy when a queue is full: block, drop-oldest or error")
	verbose := flag.Bool("v", false, "print every action")
	flag.Parse()

	var err error
	switch {
	case *offices < 1:
		err = fmt.Errorf("need at least 1 office, got %d", *offices)
	case *offices > 1 || *sinkSpec != "":
		err = runFleet(*days, *seed, *sensors, *offices, *parallel, *sinkSpec, *queue, *onFull, *verbose)
	default:
		err = run(*days, *seed, *sensors, *parallel, *verbose)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fadewich-sim: %v\n", err)
		os.Exit(1)
	}
}

// buildSink parses the -sink flag: a comma-separated list of log:PATH,
// tcp:ADDR and ring[:N] specs, fanned out through a MultiSink when more
// than one is named. The ring (if any) is returned separately so the
// caller can print its summary after the run.
func buildSink(spec string) (stream.Sink, *stream.RingSink, error) {
	var sinks []stream.Sink
	var ring *stream.RingSink
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		switch {
		case strings.HasPrefix(part, "log:"):
			s, err := stream.NewLogSink(strings.TrimPrefix(part, "log:"))
			if err != nil {
				return nil, nil, err
			}
			sinks = append(sinks, s)
		case strings.HasPrefix(part, "tcp:"):
			s, err := stream.NewTCPSink(strings.TrimPrefix(part, "tcp:"))
			if err != nil {
				return nil, nil, err
			}
			sinks = append(sinks, s)
		case part == "ring" || strings.HasPrefix(part, "ring:"):
			capacity := 0
			if rest := strings.TrimPrefix(part, "ring"); rest != "" {
				n, err := strconv.Atoi(strings.TrimPrefix(rest, ":"))
				if err != nil || n < 1 {
					return nil, nil, fmt.Errorf("bad ring capacity in %q", part)
				}
				capacity = n
			}
			ring = stream.NewRingSink(capacity)
			sinks = append(sinks, ring)
		default:
			return nil, nil, fmt.Errorf("unknown sink %q (want log:PATH, tcp:ADDR or ring[:N])", part)
		}
	}
	if len(sinks) == 1 {
		return sinks[0], ring, nil
	}
	return stream.NewMultiSink(sinks...), ring, nil
}

func run(days int, seed uint64, sensors, parallel int, verbose bool) error {
	if days < 2 {
		return fmt.Errorf("need at least 2 days (training + online), got %d", days)
	}
	fmt.Printf("generating %d-day dataset (seed %d)...\n", days, seed)
	ds, err := sim.Generate(sim.Config{Days: days, Seed: seed, Workers: parallel})
	if err != nil {
		return err
	}
	subsetIdx, err := ds.Layout.SensorSubset(sensors)
	if err != nil {
		return err
	}
	streams := ds.StreamSubset(subsetIdx)

	sys, err := core.NewSystem(core.Config{
		DT:           ds.Days[0].DT,
		Streams:      len(streams),
		Workstations: ds.Layout.NumWorkstations(),
	})
	if err != nil {
		return err
	}

	src := rng.New(seed ^ 0xfade)
	inputsPerDay := make([][][]float64, len(ds.Days))
	for day, trace := range ds.Days {
		inputsPerDay[day] = kma.GenerateInputs(trace.InputSpans, trace.Events, kma.InputModel{}, src.Split())
	}

	// Training phase over all but the last day.
	for day := 0; day < days-1; day++ {
		feed(sys, ds.Days[day], streams, inputsPerDay[day], nil)
		fmt.Printf("day %d: %d labelled training samples collected\n", day+1, sys.TrainingSamples())
	}
	if err := sys.FinishTraining(); err != nil {
		return fmt.Errorf("training: %w", err)
	}
	fmt.Printf("classifier trained on %d auto-labelled samples; going online\n\n", sys.TrainingSamples())

	// Online phase on the last day. Times reported day-relative.
	trace := ds.Days[days-1]
	dayBase := sys.Now()
	var deauths []core.Action
	feed(sys, trace, streams, inputsPerDay[days-1], func(a core.Action) {
		a.Time -= dayBase
		if verbose || a.Type == core.ActionDeauthenticate {
			fmt.Printf("  %8.1fs  %-15s w%d", a.Time, a.Type, a.Workstation+1)
			if a.Type == core.ActionDeauthenticate {
				fmt.Printf("  (cause %s)", a.Cause)
			}
			fmt.Println()
		}
		if a.Type == core.ActionDeauthenticate {
			deauths = append(deauths, a)
		}
	})

	// Score online deauthentications against ground-truth departures.
	fmt.Println()
	caught, departures := scoreDay(trace, deauths, verbose, -1)
	fmt.Printf("\nonline day: %d/%d departures deauthenticated within 10 s (%d sensors)\n",
		caught, departures, sensors)
	return nil
}

// feed drives the System through one day of the trace, delivering RSSI
// ticks and input notifications in timestamp order. A seated user who sees
// the screensaver activate reacts by moving the mouse ~1.5 s later, which
// cancels the alert — matching the paper's usability accounting where a
// spurious screensaver costs the user a 3-second cancellation.
func feed(sys *core.System, trace *sim.Trace, streams []int, inputs [][]float64, onAction func(core.Action)) {
	const reactionSec = 1.5
	cursor := make([]int, len(inputs))
	rssi := make([]float64, len(streams))
	reactAt := make([]float64, len(inputs))
	for ws := range reactAt {
		reactAt[ws] = -1
	}
	base := sys.Now()
	for i := 0; i < trace.Ticks; i++ {
		t := base + float64(i+1)*trace.DT
		dayT := float64(i+1) * trace.DT
		for ws := range inputs {
			for cursor[ws] < len(inputs[ws]) && base+inputs[ws][cursor[ws]] <= t {
				sys.NotifyInput(ws)
				cursor[ws]++
			}
			if reactAt[ws] >= 0 && t >= reactAt[ws] {
				sys.NotifyInput(ws)
				reactAt[ws] = -1
			}
		}
		for j, k := range streams {
			rssi[j] = float64(trace.Streams[k][i])
		}
		for _, a := range sys.Tick(rssi) {
			if a.Type == core.ActionScreensaverOn && seatedAt(trace, a.Workstation, dayT) {
				reactAt[a.Workstation] = t + reactionSec
			}
			if onAction != nil {
				onAction(a)
			}
		}
	}
}

// seatedAt reports whether workstation ws's user is seated at
// day-relative time t.
func seatedAt(trace *sim.Trace, ws int, t float64) bool {
	if ws < 0 || ws >= len(trace.Seated) {
		return false
	}
	for _, iv := range trace.Seated[ws] {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// scoreDay counts ground-truth departures deauthenticated within 10
// seconds. Deauth times are day-relative. office >= 0 adds a fleet label
// to the per-departure lines (verbose only).
func scoreDay(trace *sim.Trace, deauths []core.Action, verbose bool, office int) (caught, departures int) {
	for _, e := range trace.Events {
		if e.Type != agent.EventDeparture {
			continue
		}
		departures++
		for _, d := range deauths {
			if d.Workstation == e.Workstation && d.Time >= e.Time && d.Time <= e.Time+10 {
				caught++
				if verbose || office < 0 {
					if office >= 0 {
						fmt.Printf("office %3d: ", office)
					}
					fmt.Printf("departure w%d at %7.1fs -> deauthenticated +%.1fs (%s)\n",
						e.Workstation+1, e.Time, d.Time-e.Time, d.Cause)
				}
				break
			}
		}
	}
	return caught, departures
}

// runFleet scales the pipeline to K offices served by one engine.Fleet:
// per-office datasets generate in parallel, then the fleet trains and
// serves all offices sharded across the worker pool. With a sink spec
// the fleet is driven through a stream.Ingestor and the merged action
// stream is also delivered to the named backends.
func runFleet(days int, seed uint64, sensors, offices, parallel int, sinkSpec string, queue int, onFull string, verbose bool) error {
	if days < 2 {
		return fmt.Errorf("need at least 2 days (training + online), got %d", days)
	}
	pool := engine.NewPool(parallel)
	start := time.Now()
	fmt.Printf("generating %d-day datasets for %d offices (seed %d, %d workers)...\n",
		days, offices, seed, pool.Workers())
	dss, err := engine.Gather(pool, offices, func(o int) (*sim.Dataset, error) {
		// Each office gets its own seed stream; day-level parallelism is
		// already saturated by the office fan-out.
		return sim.Generate(sim.Config{Days: days, Seed: seed + uint64(o)*0x9e3779b9, Workers: 1})
	})
	if err != nil {
		return err
	}

	subsetIdx, err := dss[0].Layout.SensorSubset(sensors)
	if err != nil {
		return err
	}
	streams := dss[0].StreamSubset(subsetIdx)

	fleet, err := engine.NewFleet(engine.FleetConfig{
		Offices: offices,
		Workers: parallel,
		System: core.Config{
			DT:           dss[0].Days[0].DT,
			Streams:      len(streams),
			Workstations: dss[0].Layout.NumWorkstations(),
		},
	})
	if err != nil {
		return err
	}

	// Per-office input draws, one independent stream per office.
	inputs := make([][][][]float64, offices) // [office][day][ws][]times
	for o := 0; o < offices; o++ {
		src := rng.New((seed + uint64(o)) ^ 0xfade)
		inputs[o] = make([][][]float64, days)
		for day, trace := range dss[o].Days {
			inputs[o][day] = kma.GenerateInputs(trace.InputSpans, trace.Events, kma.InputModel{}, src.Split())
		}
	}

	// Batch delivery: straight to the fleet, or through the asynchronous
	// stream layer when sinks are attached. The ingestor's synchronous
	// OnBatch tap hands each dispatched batch back so the day loop's
	// reaction scheduling and scoring see exactly the stream the sinks do.
	deliver := fleet.RunBatch
	var ing *stream.Ingestor
	var ring *stream.RingSink
	if sinkSpec != "" {
		policy, err := stream.ParsePolicy(onFull)
		if err != nil {
			return err
		}
		snk, r, err := buildSink(sinkSpec)
		if err != nil {
			return err
		}
		ring = r
		var collected []engine.OfficeAction
		ing, err = stream.NewIngestor(fleet, stream.Config{
			Queue:  queue,
			OnFull: policy,
			Sink:   snk,
			OnBatch: func(acts []engine.OfficeAction) {
				collected = append(collected, acts...)
			},
		})
		if err != nil {
			return err
		}
		defer ing.Close()
		deliver = func(sub [][][]float64, evs []engine.InputEvent) ([]engine.OfficeAction, error) {
			collected = collected[:0]
			if err := ing.PushBatch(sub, evs); err != nil {
				return nil, err
			}
			if err := ing.Flush(); err != nil {
				return nil, err
			}
			return collected, nil
		}
		effQueue := queue
		if effQueue == 0 {
			effQueue = stream.DefaultQueue
		}
		fmt.Printf("streaming actions to %s (queue %d, on-full %s)\n", sinkSpec, effQueue, policy)
	}
	fmt.Printf("datasets ready in %.1fs; training fleet on %d day(s)...\n",
		time.Since(start).Seconds(), days-1)

	totalTicks := 0
	serveStart := time.Now()
	for day := 0; day < days-1; day++ {
		ticks, err := fleetDay(fleet, deliver, dss, streams, inputs, day, nil)
		if err != nil {
			return err
		}
		totalTicks += ticks
	}
	if err := fleet.FinishTraining(); err != nil {
		return fmt.Errorf("training: %w", err)
	}
	fmt.Printf("%d classifiers trained on %d auto-labelled samples total; going online\n\n",
		offices, fleet.TrainingSamples())

	// Online phase: the merged, time-ordered fleet stream scores each
	// office against its own ground truth.
	dayBase := make([]float64, offices)
	for o := range dayBase {
		dayBase[o] = fleet.System(o).Now()
	}
	deauths := make([][]core.Action, offices)
	online := days - 1
	ticks, err := fleetDay(fleet, deliver, dss, streams, inputs, online, func(a engine.OfficeAction) {
		act := a.Action
		act.Time -= dayBase[a.Office]
		if verbose {
			fmt.Printf("  office %3d  %8.1fs  %-15s w%d\n", a.Office, act.Time, act.Type, act.Workstation+1)
		}
		if act.Type == core.ActionDeauthenticate {
			deauths[a.Office] = append(deauths[a.Office], act)
		}
	})
	if err != nil {
		return err
	}
	totalTicks += ticks

	caught, departures := 0, 0
	for o := 0; o < offices; o++ {
		c, d := scoreDay(dss[o].Days[online], deauths[o], verbose, o)
		caught += c
		departures += d
	}
	elapsed := time.Since(serveStart).Seconds()
	fmt.Printf("\nfleet online day: %d/%d departures deauthenticated within 10 s across %d offices (%d sensors)\n",
		caught, departures, offices, sensors)
	fmt.Printf("fleet throughput: %.0f ticks/sec (%d ticks over %.1fs, %d workers)\n",
		float64(totalTicks)/elapsed, totalTicks, elapsed, pool.Workers())

	if ing != nil {
		if err := ing.Close(); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		st := ing.Stats()
		fmt.Printf("sink stream: %d actions in %d batches, %d dropped ticks\n",
			st.Actions, st.Batches, st.Dropped)
		if ring != nil {
			fmt.Printf("ring sink retains the %d newest actions (%d overwritten)\n",
				ring.Len(), ring.Overwritten())
		}
	}
	return nil
}

// fleetDay drives every office through one day in batches, handling input
// delivery and the seated user's ~1.5 s screensaver reaction. It returns
// the number of ticks delivered fleet-wide.
//
// The batch size must not exceed the reaction delay: a screensaver seen
// in batch b schedules a reaction input that can only be delivered from
// batch b+1 on, and the alert deauthenticates t_ss (3 s) after the
// screensaver. With batchTicks <= reactionTicks the due tick always
// falls inside the next batch, so the reaction lands at its exact tick —
// the same cancellation the single-office feed() performs — instead of
// arriving after the session is already gone.
func fleetDay(fleet *engine.Fleet, deliver func([][][]float64, []engine.InputEvent) ([]engine.OfficeAction, error), dss []*sim.Dataset, streams []int, inputs [][][][]float64, day int, onAction func(engine.OfficeAction)) (int, error) {
	offices := fleet.Offices()
	dt := dss[0].Days[day].DT
	reactionTicks := int(math.Ceil(1.5 / dt))
	batchTicks := reactionTicks

	dayBase := make([]float64, offices)
	cursor := make([][]int, offices)
	pending := make([][]engine.InputEvent, offices) // reactions, Tick day-absolute
	maxTicks := 0
	for o := 0; o < offices; o++ {
		dayBase[o] = fleet.System(o).Now()
		cursor[o] = make([]int, len(inputs[o][day]))
		if t := dss[o].Days[day].Ticks; t > maxTicks {
			maxTicks = t
		}
	}

	total := 0
	for startTick := 0; startTick < maxTicks; startTick += batchTicks {
		endTick := startTick + batchTicks
		if endTick > maxTicks {
			endTick = maxTicks
		}
		sub := make([][][]float64, offices)
		var evs []engine.InputEvent
		for o := 0; o < offices; o++ {
			trace := dss[o].Days[day]
			end := endTick
			if end > trace.Ticks {
				end = trace.Ticks
			}
			if startTick >= end {
				continue // this office's day is already over
			}
			m := make([][]float64, end-startTick)
			for i := startTick; i < end; i++ {
				row := make([]float64, len(streams))
				for j, k := range streams {
					row[j] = float64(trace.Streams[k][i])
				}
				m[i-startTick] = row
			}
			sub[o] = m
			total += end - startTick

			// Scheduled keyboard/mouse inputs falling in this range.
			for ws, times := range inputs[o][day] {
				for cursor[o][ws] < len(times) && int(times[cursor[o][ws]]/dt) < end {
					tick := int(times[cursor[o][ws]] / dt)
					if tick < startTick {
						tick = startTick
					}
					evs = append(evs, engine.InputEvent{Office: o, Workstation: ws, Tick: tick - startTick})
					cursor[o][ws]++
				}
			}
			// Matured screensaver reactions.
			keep := pending[o][:0]
			for _, ev := range pending[o] {
				if ev.Tick < end {
					tick := ev.Tick
					if tick < startTick {
						tick = startTick
					}
					evs = append(evs, engine.InputEvent{Office: o, Workstation: ev.Workstation, Tick: tick - startTick})
				} else {
					keep = append(keep, ev)
				}
			}
			pending[o] = keep
		}

		acts, err := deliver(sub, evs)
		if err != nil {
			return total, err
		}
		for _, a := range acts {
			o := a.Office
			dayT := a.Action.Time - dayBase[o]
			if a.Action.Type == core.ActionScreensaverOn && seatedAt(dss[o].Days[day], a.Action.Workstation, dayT) {
				// Day-relative tick index of the screensaver action
				// (rounded against float drift), due reactionTicks later —
				// the same tick feed() would deliver the reaction at.
				ssTick := int(dayT/dt+0.5) - 1
				pending[o] = append(pending[o], engine.InputEvent{
					Office:      o,
					Workstation: a.Action.Workstation,
					Tick:        ssTick + reactionTicks,
				})
			}
			if onAction != nil {
				onAction(a)
			}
		}
	}
	return total, nil
}
