package fadewich_test

import (
	"hash/fnv"
	"math"
	"testing"

	"fadewich"
	"fadewich/internal/rng"
)

// goldenFleetStream pins the byte-exact merged action stream of a
// homogeneous 64-office fleet run: every office is authenticated by
// input events, sits through the MD warm-up, then sees anomaly bursts at
// office-staggered offsets that drive the alert → screensaver → deauth
// cascade. Recorded from the concat-and-sort merge that predates the
// k-way shard merge; any merge or delivery refactor must reproduce it
// bit for bit (same total order: time, then office ID, then per-office
// emission order).
const goldenFleetStream uint64 = 0xb8df95c32ac97378

// goldenFleetTicks synthesises office o's RSSI ticks: quiet AR-free
// Gaussian wiggle around -60 dBm with two anomalous high-variance
// stretches whose offsets depend on the office ID.
func goldenFleetTicks(o, ticks, streams int) [][]float64 {
	src := rng.New(uint64(o)*0x9e3779b9 + 1)
	rows := make([][]float64, ticks)
	burst1 := 200 + (o%7)*10
	burst2 := 420 + (o%5)*12
	for t := range rows {
		std := 0.5
		if (t >= burst1 && t < burst1+60) || (t >= burst2 && t < burst2+80) {
			std = 6.0
		}
		row := make([]float64, streams)
		for k := range row {
			row[k] = -60 + src.Normal(0, std)
		}
		rows[t] = row
	}
	return rows
}

func TestFleetActionStreamGolden(t *testing.T) {
	const (
		offices    = 64
		streams    = 12
		ticks      = 600
		batchTicks = 50
	)
	fleet, err := fadewich.NewFleet(fadewich.FleetConfig{
		Offices: offices,
		System:  fadewich.SystemConfig{Streams: streams, Workstations: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([][][]float64, offices)
	for o := range data {
		data[o] = goldenFleetTicks(o, ticks, streams)
	}

	h := fnv.New64a()
	var buf [8]byte
	put64 := func(bits uint64) {
		for b := 0; b < 8; b++ {
			buf[b] = byte(bits >> (8 * b))
		}
		h.Write(buf[:])
	}
	for start := 0; start < ticks; start += batchTicks {
		end := start + batchTicks
		if end > ticks {
			end = ticks
		}
		batch := make([][][]float64, offices)
		var evs []fadewich.InputEvent
		for o := range batch {
			batch[o] = data[o][start:end]
			// Authenticate every workstation up front, then keep w0 alive
			// with sparse office-staggered input so some sessions idle into
			// the alert cascade and others cancel it.
			if start == 0 {
				for ws := 0; ws < 3; ws++ {
					evs = append(evs, fadewich.InputEvent{Office: o, Workstation: ws, Tick: 0})
				}
			}
			if (start/batchTicks+o)%3 == 0 {
				evs = append(evs, fadewich.InputEvent{Office: o, Workstation: 0, Tick: 10 + o%20})
			}
		}
		acts, err := fleet.RunBatch(batch, evs)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range acts {
			put64(uint64(int64(a.Office)))
			put64(math.Float64bits(a.Action.Time))
			put64(uint64(a.Action.Type))
			put64(uint64(int64(a.Action.Workstation)))
			put64(uint64(a.Action.Cause))
			put64(uint64(int64(a.Action.Label)))
		}
	}
	if got := h.Sum64(); got != goldenFleetStream {
		t.Fatalf("golden hash %#x, want %#x: 64-office merged action stream diverged from the pre-refactor byte stream", got, goldenFleetStream)
	}
}
