module fadewich

go 1.23
