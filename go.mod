module fadewich

go 1.24
