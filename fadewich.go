// Package fadewich is a complete reproduction of "FADEWICH: Fast
// Deauthentication over the Wireless Channel" (Conti, Lovisotto,
// Martinovic, Tsudik — ICDCS 2017): an automatic deauthentication system
// that locks a workstation within seconds of its user walking away, using
// only the effect of the human body on the received signal strength of
// links between cheap wireless sensors.
//
// The package is a facade over the internal subsystems:
//
//   - System (internal/core) — the streaming FADEWICH instance: feed it
//     RSSI ticks and input notifications, get alert/screensaver/
//     deauthentication actions. This is what a deployment runs.
//   - Simulator (internal/sim, internal/rf, internal/agent,
//     internal/office) — the office/radio testbed substitute: generates
//     multi-day RSSI datasets with exact ground truth.
//   - Harness (internal/eval) — regenerates every table and figure of the
//     paper's evaluation from a dataset.
//   - Fleet (internal/engine) — the concurrent fleet layer: shards many
//     independent office Systems across a worker pool with batched tick
//     delivery and a merged, time-ordered action stream. The fleet is an
//     elastic multi-tenant registry: offices carry per-tenant
//     configurations (FleetConfig.PerOffice) and stable IDs, and
//     AddOffice/RemoveOffice change the membership at batch boundaries
//     while ticks flow. The same pool parallelises dataset generation
//     and the harness's experiment sweeps, deterministically in the seed.
//   - Streaming (internal/stream) — the asynchronous pipeline on top of
//     the Fleet: an Ingestor with bounded per-office tick queues
//     (block / drop-oldest / error backpressure, created and retired on
//     membership change) and pluggable action Sinks (JSONL log file,
//     wire-framed TCP stream, durable segment log, in-memory ring,
//     multi-sink fan-out) fed by a dedicated pump goroutine.
//   - Wire + segment log (internal/wire, internal/segment) — the
//     versioned frame codec every sink and consumer shares (magic +
//     version + flags header, length, CRC32C trailer; JSONL payloads as
//     codec v1, compact binary as v2) and the crash-safe rotating
//     segment store with manifest, torn-frame recovery and filtered
//     replay cursors. cmd/fadewich-tail is the reference consumer.
//   - Control plane (internal/serve) — the long-running service face:
//     cmd/fadewich-serve hosts a live Fleet behind an HTTP API (tick
//     ingest, streamed actions, office status, Prometheus metrics) and
//     reconciles fleet membership against a declarative JSON fleet
//     spec, applying adds, removes and config rollouts at batch
//     boundaries.
//
// Quick start:
//
//	ds, _ := fadewich.GenerateDataset(fadewich.SimConfig{Days: 1, Seed: 7})
//	h, _ := fadewich.NewHarness(ds, fadewich.EvalOptions{})
//	rows, _ := h.Table3(0) // MD performance per sensor count
//
// See the examples/ directory for runnable end-to-end programs.
package fadewich

import (
	"fadewich/internal/agent"
	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/eval"
	"fadewich/internal/kma"
	"fadewich/internal/md"
	"fadewich/internal/office"
	"fadewich/internal/re"
	"fadewich/internal/rf"
	"fadewich/internal/segment"
	"fadewich/internal/serve"
	"fadewich/internal/sim"
	"fadewich/internal/stream"
	"fadewich/internal/svm"
	"fadewich/internal/wire"
)

// System is the streaming FADEWICH instance (training phase →
// FinishTraining → online phase).
type System = core.System

// SystemConfig parameterises a System.
type SystemConfig = core.Config

// Action is a System output (alert transitions, screensaver activations,
// deauthentications).
type Action = core.Action

// Action types emitted by the System.
const (
	ActionAlertEnter     = core.ActionAlertEnter
	ActionAlertExit      = core.ActionAlertExit
	ActionScreensaverOn  = core.ActionScreensaverOn
	ActionDeauthenticate = core.ActionDeauthenticate
)

// Lifecycle phases of a System.
const (
	PhaseTraining = core.PhaseTraining
	PhaseOnline   = core.PhaseOnline
)

// NewSystem builds a streaming System in the training phase.
func NewSystem(cfg SystemConfig) (*System, error) { return core.NewSystem(cfg) }

// Fleet shards many independent office Systems across a worker pool with
// batched tick delivery and a merged time-ordered action stream.
// Membership is elastic: Fleet.AddOffice and Fleet.RemoveOffice join and
// retire tenants (by stable office ID) while batches are flowing, with
// changes landing at batch boundaries.
type Fleet = engine.Fleet

// FleetConfig parameterises a Fleet: the initial office count, the shared
// default per-office System configuration, optional PerOffice overrides
// for heterogeneous tenants, and the worker-pool width.
type FleetConfig = engine.FleetConfig

// OfficeAction is one action emitted by one office of a Fleet, tagged
// with the office's stable ID.
type OfficeAction = engine.OfficeAction

// OfficeBatch is one office's tick payload for Fleet.Run, addressed by
// stable office ID — the elastic alternative to the dense RunBatch.
type OfficeBatch = engine.OfficeBatch

// InputEvent routes a keyboard/mouse notification to one office within a
// Fleet batch.
type InputEvent = engine.InputEvent

// NewFleet builds a multi-office fleet with every office System in the
// training phase. Offices with a FleetConfig.PerOffice entry use that
// configuration; the rest share the FleetConfig.System default.
// Deterministic: the merged action stream is identical for every worker
// count.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return engine.NewFleet(cfg) }

// Ingestor is the asynchronous front door of a Fleet: bounded per-office
// tick queues feeding a dispatcher goroutine, with the merged action
// stream pumped to a pluggable Sink. Ingestor.AddOffice and
// Ingestor.RemoveOffice change the fleet membership while ticks flow —
// joiners get a fresh queue and participate from the next dispatch on;
// removed offices drain their queued ticks as a final flush before the
// queue is retired.
type Ingestor = stream.Ingestor

// IngestorConfig parameterises an Ingestor (queue capacity, backpressure
// policy, sink, synchronous tap).
type IngestorConfig = stream.Config

// IngestorStats is a snapshot of an Ingestor's per-office queue
// depth/drop counters (ascending by office ID, with retired-office
// aggregates) and dispatch totals.
type IngestorStats = stream.Stats

// OfficeQueueStats are one office's ingestion queue counters.
type OfficeQueueStats = stream.OfficeStats

// BackpressurePolicy selects what Ingestor.Push does when an office's
// tick queue is full.
type BackpressurePolicy = stream.Policy

// Backpressure policies.
const (
	OnFullBlock      = stream.Block
	OnFullDropOldest = stream.DropOldest
	OnFullError      = stream.ErrorOnFull
)

// NewIngestor wraps a Fleet in the asynchronous ingestion layer and
// starts its dispatcher (and, with a sink configured, pump) goroutines.
func NewIngestor(fleet *Fleet, cfg IngestorConfig) (*Ingestor, error) {
	return stream.NewIngestor(fleet, cfg)
}

// Sink consumes dispatched batches of the merged fleet action stream.
type Sink = stream.Sink

// LogSink appends the action stream to a JSONL file.
type LogSink = stream.LogSink

// TCPSink streams the action stream to a TCP peer as wire frames,
// redialing with capped exponential backoff on connection errors.
type TCPSink = stream.TCPSink

// RingSink keeps the most recent actions in a fixed in-memory ring.
type RingSink = stream.RingSink

// NewLogSink creates (or truncates) the JSONL file at path.
func NewLogSink(path string) (*LogSink, error) { return stream.NewLogSink(path) }

// NewTCPSink dials addr and streams wire-framed action batches to it.
func NewTCPSink(addr string) (*TCPSink, error) { return stream.NewTCPSink(addr) }

// NewRingSink returns a ring holding up to capacity actions (0 selects
// the default of 1024).
func NewRingSink(capacity int) *RingSink { return stream.NewRingSink(capacity) }

// NewMultiSink fans every batch out to all the given sinks.
func NewMultiSink(sinks ...Sink) Sink { return stream.NewMultiSink(sinks...) }

// WireVersion selects the payload codec of framed sinks and segment
// logs: WireV1JSONL keeps the historical JSONL payload, WireV2Binary is
// the compact binary codec. Frames are self-describing, so consumers
// (fadewich-tail, SegmentReader) decode either.
type WireVersion = wire.Version

// Wire codec versions.
const (
	WireV1JSONL  = wire.V1JSONL
	WireV2Binary = wire.V2Binary
)

// SegmentSink persists the action stream to a durable segment log:
// rotating segment files of wire frames plus an atomically-updated
// manifest, replayable after a crash up to the last complete frame.
type SegmentSink = stream.SegmentSink

// SegmentConfig parameterises a segment log: directory, rotation
// thresholds (size and age), fsync policy and wire codec.
type SegmentConfig = segment.Config

// SegmentFsyncPolicy selects how hard the segment log pushes frames to
// stable storage.
type SegmentFsyncPolicy = segment.FsyncPolicy

// Segment fsync policies.
const (
	SegmentFsyncNever  = segment.FsyncNever
	SegmentFsyncRotate = segment.FsyncRotate
	SegmentFsyncAlways = segment.FsyncAlways
)

// SegmentReader replays a segment directory frame by frame, recovering
// the intact prefix after a crash (detecting — and with
// SegmentReadOptions.Repair truncating — a torn final frame) and
// following a live writer across polls.
type SegmentReader = segment.Reader

// SegmentReadOptions filter a segment replay (office set, office-clock
// time range) and opt into torn-tail repair.
type SegmentReadOptions = segment.Options

// NewSegmentSink opens (creating if needed) a segment directory and
// returns a sink appending the action stream to it as wire frames.
func NewSegmentSink(cfg SegmentConfig) (*SegmentSink, error) { return stream.NewSegmentSink(cfg) }

// OpenSegmentDir opens a segment directory for replay or tailing.
func OpenSegmentDir(dir string, opt SegmentReadOptions) (*SegmentReader, error) {
	return segment.OpenDir(dir, opt)
}

// ServeConfig parameterises the control-plane Server behind
// cmd/fadewich-serve: spec file path, ingestion knobs, sinks.
type ServeConfig = serve.Config

// Server hosts a live Fleet+Ingestor behind the fadewich-serve HTTP
// API (tick ingest, action stream, office status, train, reload,
// metrics) and reconciles fleet membership against a declarative
// fleet-spec file. It implements http.Handler; Close drains.
type Server = serve.Server

// FleetSpec is the declarative fleet description fadewich-serve
// reconciles against: desired offices with a shared defaults block.
type FleetSpec = serve.Spec

// FleetOfficeSpec describes one desired office in a FleetSpec (the
// -office-config schema plus a stable name).
type FleetOfficeSpec = serve.OfficeSpec

// ResolvedOffice is one desired office after defaulting and
// validation: its name and fully-resolved System configuration.
type ResolvedOffice = serve.ResolvedOffice

// NewServer builds the fleet from the spec file and starts the
// ingestion machinery.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// ParseFleetSpec decodes a fleet spec from JSON, rejecting unknown
// fields.
func ParseFleetSpec(data []byte) (*FleetSpec, error) { return serve.ParseSpec(data) }

// LoadFleetSpec reads and parses a fleet-spec file.
func LoadFleetSpec(path string) (*FleetSpec, error) { return serve.LoadSpec(path) }

// Layout is an office floor plan: workstations, wall sensors, the door.
type Layout = office.Layout

// PaperOffice returns the 6 m × 3 m three-workstation office of the
// paper's Fig 6 with its nine wall sensors.
func PaperOffice() *Layout { return office.Paper() }

// SmallOffice returns a compact two-workstation office for generalisation
// experiments.
func SmallOffice() *Layout { return office.Small() }

// WideOffice returns a larger four-workstation office for generalisation
// experiments.
func WideOffice() *Layout { return office.Wide() }

// SimConfig parameterises dataset generation.
type SimConfig = sim.Config

// Dataset is a generated multi-day RSSI dataset with ground truth.
type Dataset = sim.Dataset

// Trace is one simulated day.
type Trace = sim.Trace

// GenerateDataset runs the office/radio simulation. Deterministic in
// cfg.Seed.
func GenerateDataset(cfg SimConfig) (*Dataset, error) { return sim.Generate(cfg) }

// RFConfig parameterises the radio propagation model.
type RFConfig = rf.Config

// RFDisable is the sentinel for RFConfig fields whose zero value would
// otherwise select a default: e.g. QuantStepDB: RFDisable turns receiver
// quantisation off and InterferencePerHour: RFDisable disables bursts,
// where a literal 0 means "use the default". See rf.Disable for the full
// field list.
const RFDisable = rf.Disable

// Block is the columnar RSSI buffer of the block-based hot path: one
// contiguous [ticks×streams] tick-major float64 buffer.
// rf.Network.SampleBlock fills one, System.TickBlock ingests one, and
// OfficeBatch.Block carries one through a Fleet — byte-identical to the
// per-tick APIs, without the per-tick slice traffic.
type Block = rf.Block

// AgentConfig parameterises simulated user behaviour.
type AgentConfig = agent.Config

// AgentEvent is one ground-truth event recorded by the simulator.
type AgentEvent = agent.Event

// EvalOptions configures the experiment harness.
type EvalOptions = eval.Options

// Harness regenerates the paper's tables and figures from a dataset.
type Harness = eval.Harness

// NewHarness wraps a dataset for evaluation.
func NewHarness(ds *Dataset, opt EvalOptions) (*Harness, error) { return eval.NewHarness(ds, opt) }

// DefaultEvalOptions returns the paper's evaluation configuration.
func DefaultEvalOptions() EvalOptions { return eval.DefaultOptions() }

// MDConfig parameterises the movement detector.
type MDConfig = md.Config

// FeatureConfig parameterises RE signature extraction.
type FeatureConfig = re.FeatureConfig

// SVMConfig parameterises the classifier.
type SVMConfig = svm.Config

// ControlParams are the controller timing constants (t∆, t_ID, t_ss, T).
type ControlParams = control.Params

// InputModel is the Mikkelsen et al. keyboard/mouse simulation.
type InputModel = kma.InputModel

// DefaultControlParams returns the paper's constants: t∆ = 4.5 s,
// t_ID = 5 s, t_ss = 3 s, T = 300 s.
func DefaultControlParams() ControlParams { return control.DefaultParams() }
